// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock in picoseconds and a priority queue
// of events. Events scheduled for the same instant fire in scheduling order,
// which makes every simulation fully deterministic for a given seed and
// schedule, independent of the host machine or Go scheduler. This determinism
// is what lets the repository reproduce the paper's experiments bit-for-bit
// across runs, something raw hardware measurements cannot do.
//
// # Sharded queue and the deterministic merge rule
//
// Internally the queue is split into S independent binary min-heaps
// ("shards") plus an express lane (below). Every event carries a globally
// unique, monotonically assigned sequence number, and the dispatcher always
// pops the event with the minimum (timestamp, sequence) pair across all
// shard heads. Because the sequence numbers are assigned at scheduling time
// independent of shard placement, the merged pop order is exactly the pop
// order of a single global heap: shard count and shard assignment can never
// change results, only the cost profile — push/pop sift within a shard is
// O(log N/S) and the merge scan is O(S) over shard heads. Callers that know
// a natural partition (the coherence layer shards by a line's home
// directory) use ScheduleShard/AtShard; everything else lands in shard 0.
//
// # Express lane
//
// TryExpress schedules an event on a plain FIFO slice instead of a heap
// when its (timestamp, sequence) pair is known to be >= the lane's current
// tail, which holds for the common "schedule the completion of the service
// I am starting right now" pattern. The dispatcher merges the lane head
// with the shard heads under the same (timestamp, sequence) rule, so an
// express event runs at exactly the instant and position a heap event
// would — it just skips both sift paths. Callers must fall back to
// Schedule/ScheduleShard when TryExpress declines.
//
// # Fast-forward hooks
//
// ShiftPending, JumpClock and SetIdleHook exist for the analytic
// fast-forward layer (internal/workload's steady-state extrapolation):
// they let a caller that has proven the simulation is in an exactly
// periodic regime translate every pending event forward in time, advance
// the clock and the processed-event count by the elided amount, and get
// control between events to do so. They preserve all engine invariants
// but are not meant for general scheduling.
//
// In the model pipeline (ARCHITECTURE.md) this package is the bottom
// layer: internal/coherence schedules every protocol message on it,
// and each experiment cell owns a private engine — parallelism lives
// across cells (internal/harness), never inside one.
package sim

import (
	"fmt"
	"math"
	"math/bits"
)

// Time is a simulated instant or duration in picoseconds.
//
// Picosecond resolution lets machine descriptions express sub-cycle costs
// (e.g. 0.5 cycles of arbitration at 2.4 GHz) without accumulating rounding
// error over billions of events. An int64 of picoseconds spans about 106
// days of simulated time, far beyond any experiment here.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanoseconds reports t as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// event is a scheduled callback. seq breaks ties so that events scheduled
// earlier at the same instant run first (stable, deterministic ordering),
// and — because it is globally unique across shards — defines the total
// order the sharded merge reproduces.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before reports whether ev orders strictly before (at, seq). Sequence
// numbers are unique, so this is a strict total order.
func (ev *event) before(at Time, seq uint64) bool {
	return ev.at < at || (ev.at == at && ev.seq < seq)
}

// eventHeap is a binary min-heap of events ordered by (at, seq). It is
// hand-rolled rather than built on container/heap because the interface
// indirection there boxes every pushed and popped event onto the heap —
// two allocations per scheduled event, which dominated simulation cost
// at millions of events per experiment cell. The sift paths move the
// displaced element through a "hole" (one store per level) instead of
// swapping (three stores per level), which matters because each event
// carries a function pointer and therefore a write barrier per store.
type eventHeap []event

// push appends ev and sifts the hole up to its heap position.
func (h *eventHeap) push(ev event) {
	q := append(*h, event{})
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].before(ev.at, ev.seq) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = ev
	*h = q
}

// pop removes and returns the minimum event, sifting the former tail
// down through the root hole.
func (h *eventHeap) pop() event {
	q := *h
	top := q[0]
	n := len(q) - 1
	tail := q[n]
	q[n] = event{} // release the callback for GC
	q = q[:n]
	*h = q
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && q[r].before(q[c].at, q[c].seq) {
				c = r
			}
			if tail.before(q[c].at, q[c].seq) {
				break
			}
			q[i] = q[c]
			i = c
		}
		q[i] = tail
	}
	return top
}

// maxShards bounds the shard count: the dispatcher scans every shard
// head per pop, so past a few dozen shards the merge scan would cost
// more than the sift depth it saves.
const maxShards = 64

// expressBacklog bounds the express lane. The lane is meant for
// imminent events; if a caller somehow parks this many events on it the
// engine pushes further ones through the heaps so the lane's linear
// scan-free pop stays cheap.
const expressBacklog = 64

// Engine is a discrete-event simulator. The zero value is ready to use
// (one shard). Engines are not safe for concurrent use; a simulation is
// a single-threaded interleaving of events by construction.
type Engine struct {
	now Time
	seq uint64
	// shards are the per-partition heaps; extra is lazily grown so the
	// zero-value Engine (shard 0 only) keeps working.
	shards []eventHeap
	// express is the FIFO lane: entries are (at, seq)-nondecreasing, the
	// live window is express[exHead:].
	express []event
	exHead  int
	// occupied is a bitmask of shards with queued events (bit s ↔
	// shards[s] non-empty; maxShards = 64 makes one word enough). The
	// dispatcher's merge scan walks only set bits, so sparse queues —
	// the common case, a closed-loop cell idles at one or two pending
	// events — pay for the shards they use, not the shards they have.
	occupied uint64
	// pending counts queued events across all shards and the lane;
	// maxPending is its high-water mark (see MaxPending).
	pending    int
	maxPending int
	// pendIntegral is the time integral of the pending-event count:
	// ∫ pending(t) dt in picosecond-events, accumulated by the
	// dispatcher as the clock advances (see QueueTimeIntegral).
	pendIntegral Time
	// processed counts events executed, for reporting and loop guards;
	// fast-forwarded (analytically elided) events are added by JumpClock
	// so the count is identical with and without fast-forward.
	processed uint64
	stopped   bool
	// running and horizon describe the active Run/Drain call, for
	// TryExpress validity checks.
	running bool
	horizon Time
	// perturb, when set, rewrites every relative delay passed to
	// Schedule (fault injection: internal/faults uses it to jitter
	// transfer latencies deterministically). Absolute At times are never
	// perturbed, so measurement-window boundaries stay exact.
	perturb func(d Time) Time
	// eventHook, when set, runs before each dequeued event's callback
	// with the 1-based count of events processed so far. Fault plans use
	// it to panic a cell at a chosen event count; it must not schedule.
	eventHook func(processed uint64)
	// monotone, when set, receives a violation report if a dequeued
	// event's timestamp precedes the clock — impossible unless the heap
	// is corrupted, which is exactly what invariant checking looks for.
	monotone func(err error)
	// idleHook, when set, runs after each event's callback returns, with
	// the dispatch stack empty. The steady-state fast-forward layer uses
	// it as its only foothold: between events it may inspect the queue,
	// ShiftPending and JumpClock. It must not schedule events itself.
	idleHook func()
}

// SetPerturb installs a delay-perturbation hook applied to every
// Schedule call (nil removes it). The hook must be deterministic for
// reproducible fault injection; negative results are clamped to zero
// like any other delay. While a perturbation hook is installed
// TryExpress always declines, so a possibly stateful hook is consulted
// exactly once per scheduled event.
func (e *Engine) SetPerturb(fn func(d Time) Time) { e.perturb = fn }

// SetEventHook installs a per-event hook run before each event's
// callback with the count of events processed so far, 1-based (nil
// removes it).
func (e *Engine) SetEventHook(fn func(processed uint64)) { e.eventHook = fn }

// SetMonotoneCheck installs an event-time monotonicity checker: report
// is called with a descriptive error if an event is ever dequeued with
// a timestamp before the current clock (nil removes the check).
func (e *Engine) SetMonotoneCheck(report func(err error)) { e.monotone = report }

// SetIdleHook installs a between-events hook (nil removes it): fn runs
// after each event's callback returns, with no event mid-dispatch. It
// exists for the analytic fast-forward layer, which needs a clean stack
// to translate pending events and jump the clock; the hook must not
// schedule events.
func (e *Engine) SetIdleHook(fn func()) { e.idleHook = fn }

// NewEngine returns an engine with its clock at zero and one shard.
func NewEngine() *Engine { return &Engine{} }

// NewEngineSharded returns an engine whose event queue is split into n
// independent shards (clamped to [1, 64]) merged deterministically by
// the global (timestamp, sequence) order. Results are identical for
// every n; only the queueing cost profile changes.
func NewEngineSharded(n int) *Engine {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	return &Engine{shards: make([]eventHeap, n)}
}

// Shards reports the engine's shard count.
func (e *Engine) Shards() int {
	if len(e.shards) == 0 {
		return 1
	}
	return len(e.shards)
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far. Analytically
// fast-forwarded events count exactly as if they had been dispatched,
// so the value is independent of whether fast-forward engaged.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d (d may be zero; negative delays are
// clamped to zero so that callers computing d from latencies never move
// the clock backwards). The event lands in shard 0.
func (e *Engine) Schedule(d Time, fn func()) { e.ScheduleShard(0, d, fn) }

// ScheduleShard is Schedule with an explicit queue shard. The shard
// index is reduced modulo the shard count; it affects cost only, never
// ordering.
func (e *Engine) ScheduleShard(shard int, d Time, fn func()) {
	if e.perturb != nil {
		d = e.perturb(d)
	}
	if d < 0 {
		d = 0
	}
	e.AtShard(shard, e.now+d, fn)
}

// At runs fn at absolute time t. Times before Now are clamped to Now.
// The event lands in shard 0.
func (e *Engine) At(t Time, fn func()) { e.AtShard(0, t, fn) }

// AtShard is At with an explicit queue shard.
func (e *Engine) AtShard(shard int, t Time, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	if len(e.shards) == 0 {
		e.shards = make([]eventHeap, 1)
	}
	s := shard % len(e.shards)
	e.shards[s].push(event{at: t, seq: e.seq, fn: fn})
	e.occupied |= 1 << uint(s)
	e.pending++
	if e.pending > e.maxPending {
		e.maxPending = e.pending
	}
}

// TryExpress schedules fn after delay d on the express lane and reports
// whether it could. It declines — and schedules nothing — when the
// engine is not inside Run/Drain, a perturbation hook is installed
// (the hook may be stateful, and it must be consulted exactly once per
// event, by the Schedule fallback), the event would land past the
// active horizon, it would break the lane's time order, or the lane is
// full. On success the event is dispatched with exactly the
// (timestamp, sequence) position a Schedule call would have produced.
func (e *Engine) TryExpress(d Time, fn func()) bool {
	if !e.running || e.perturb != nil {
		return false
	}
	if d < 0 {
		d = 0
	}
	t := e.now + d
	if t > e.horizon {
		return false
	}
	if n := len(e.express); n > e.exHead {
		if t < e.express[n-1].at {
			return false
		}
		if n-e.exHead >= expressBacklog {
			return false
		}
	}
	e.seq++
	e.express = append(e.express, event{at: t, seq: e.seq, fn: fn})
	e.pending++
	if e.pending > e.maxPending {
		e.maxPending = e.pending
	}
	return true
}

// MaxPending reports the largest number of events that were ever queued
// at once — the schedule's burstiness, exported into metrics snapshots
// (internal/metrics) as "sim.queue_peak". The count spans all shards
// and the express lane. Analytically fast-forwarded accesses never
// queue, so layers that elide events keep themselves off when metrics
// consumers need this number (see internal/workload).
func (e *Engine) MaxPending() int { return e.maxPending }

// Pending reports the number of events waiting to run, across all
// shards and the express lane.
func (e *Engine) Pending() int { return e.pending }

// QueueTimeIntegral reports ∫ pending(t) dt over dispatched time: the
// cumulative picosecond-events of queued work. Divided by a window it
// is the mean number of outstanding events — the engine-pressure signal
// internal/metrics exports as "sim.queue_time_ps". Time elided by
// JumpClock contributes nothing (the fast-forward layer only engages
// when no metrics consumer reads this), and neither does the idle
// advance to the horizon at the end of Run (the queue is empty there).
func (e *Engine) QueueTimeIntegral() Time { return e.pendIntegral }

// PeekTime returns the timestamp of the next event to run, if any.
func (e *Engine) PeekTime() (Time, bool) {
	at, _, src := e.peekMin()
	return at, src != srcNone
}

// Stop halts Run before the next event. Events already dequeued complete.
func (e *Engine) Stop() { e.stopped = true }

// ShiftPending adds delta to the timestamp of every pending event.
// A uniform translation preserves heap order and the express lane's
// monotonicity, so this is safe at any queue size; it exists for the
// fast-forward layer, which translates an exactly periodic schedule
// over the elided cycles. delta must be non-negative.
func (e *Engine) ShiftPending(delta Time) {
	if delta < 0 {
		panic("sim: ShiftPending with negative delta")
	}
	for s := range e.shards {
		h := e.shards[s]
		for i := range h {
			h[i].at += delta
		}
	}
	for i := e.exHead; i < len(e.express); i++ {
		e.express[i].at += delta
	}
}

// ShiftHead adds delta to the timestamp of only the next-to-run event,
// re-establishing queue order, and reports whether it could. Unlike
// ShiftPending it leaves every other pending event in place: the
// fast-forward layer uses it to translate a periodic completion past
// elided cycles while a fixed marker event (the warmup boundary) stays
// where it is. It declines — changing nothing — when no event is
// pending or when the head sits on the express lane ahead of another
// lane entry it would overtake (the lane must stay time-ordered). As
// with ShiftPending, the caller is responsible for the shifted time
// being consistent with the subsequent JumpClock.
func (e *Engine) ShiftHead(delta Time) bool {
	if delta < 0 {
		panic("sim: ShiftHead with negative delta")
	}
	_, _, src := e.peekMin()
	switch src {
	case srcNone:
		return false
	case srcExpress:
		if e.exHead+1 < len(e.express) && e.express[e.exHead].at+delta > e.express[e.exHead+1].at {
			return false
		}
		e.express[e.exHead].at += delta
	default:
		h := &e.shards[src]
		ev := h.pop()
		ev.at += delta
		h.push(ev)
	}
	return true
}

// JumpClock advances the clock to t and credits skipped elided events
// to the processed count, on behalf of a fast-forward layer that has
// already applied their effects. t must not precede the current clock
// or overtake any pending event.
func (e *Engine) JumpClock(t Time, skipped uint64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: JumpClock backwards from %v to %v", e.now, t))
	}
	if at, ok := e.PeekTime(); ok && at < t {
		panic(fmt.Sprintf("sim: JumpClock to %v overtakes pending event at %v", t, at))
	}
	e.now = t
	e.processed += skipped
}

// queue sources for peekMin.
const (
	srcNone    = -2
	srcExpress = -1
)

// peekMin locates the minimum (at, seq) event across the express lane
// and every shard head. src is srcExpress, a shard index, or srcNone.
func (e *Engine) peekMin() (at Time, seq uint64, src int) {
	src = srcNone
	if e.exHead < len(e.express) {
		ev := &e.express[e.exHead]
		at, seq, src = ev.at, ev.seq, srcExpress
	}
	for occ := e.occupied; occ != 0; occ &= occ - 1 {
		s := bits.TrailingZeros64(occ)
		h := e.shards[s]
		if src == srcNone || h[0].before(at, seq) {
			at, seq, src = h[0].at, h[0].seq, s
		}
	}
	return at, seq, src
}

// popNext removes and returns the next event if its timestamp is within
// limit.
func (e *Engine) popNext(limit Time) (event, bool) {
	at, _, src := e.peekMin()
	if src == srcNone || at > limit {
		return event{}, false
	}
	e.pending--
	if src == srcExpress {
		ev := e.express[e.exHead]
		e.express[e.exHead] = event{}
		e.exHead++
		if e.exHead == len(e.express) {
			e.express = e.express[:0]
			e.exHead = 0
		} else if e.exHead >= 2*expressBacklog {
			// Slide the live window to the front. Without this the lane
			// never compacts while events keep arriving (a closed-loop
			// cell always has one pending), and the dead prefix grows to
			// O(total events) — hundreds of MB over a full sweep. The
			// window is at most expressBacklog entries, so the copy is
			// bounded and amortized over the pops that grew the prefix.
			n := copy(e.express, e.express[e.exHead:])
			tail := e.express[n:]
			for i := range tail {
				tail[i] = event{}
			}
			e.express = e.express[:n]
			e.exHead = 0
		}
		return ev, true
	}
	ev := e.shards[src].pop()
	if len(e.shards[src]) == 0 {
		e.occupied &^= 1 << uint(src)
	}
	return ev, true
}

// dispatch runs events up to and including limit.
func (e *Engine) dispatch(limit Time) {
	e.stopped = false
	e.running = true
	e.horizon = limit
	for !e.stopped {
		ev, ok := e.popNext(limit)
		if !ok {
			break
		}
		if e.monotone != nil && ev.at < e.now {
			e.monotone(fmt.Errorf("sim: event time moved backwards: dequeued t=%v seq=%d with clock at %v", ev.at, ev.seq, e.now))
		}
		// popNext already took the dequeued event out of pending, so the
		// count outstanding across [now, ev.at] is pending+1.
		e.pendIntegral += Time(e.pending+1) * (ev.at - e.now)
		e.now = ev.at
		e.processed++
		if e.eventHook != nil {
			e.eventHook(e.processed)
		}
		ev.fn()
		if e.idleHook != nil {
			e.idleHook()
		}
	}
	e.running = false
}

// Run executes events in timestamp order until the queue is empty, the
// horizon is passed, or Stop is called. Events with timestamps exactly at
// the horizon still run; later ones remain queued. It returns the time of
// the clock when it stopped.
func (e *Engine) Run(horizon Time) Time {
	e.dispatch(horizon)
	if e.now < horizon && e.pending == 0 {
		// Advance to the horizon so repeated Run calls observe monotonic time.
		e.now = horizon
	}
	return e.now
}

// Drain executes all remaining events regardless of time. It is mainly
// useful in tests that want to observe the natural end of a workload.
func (e *Engine) Drain() Time {
	e.dispatch(Time(math.MaxInt64))
	return e.now
}

// Reset returns the engine to its initial state — clock at zero, no
// pending events, all hooks removed — while keeping the shard layout
// and every queue's allocated capacity. It is the arena-style teardown
// the cell pool (internal/workload) relies on: reusing an engine across
// cells is byte-identical to building a fresh one.
func (e *Engine) Reset() {
	for s := range e.shards {
		h := e.shards[s]
		for i := range h {
			h[i] = event{}
		}
		e.shards[s] = h[:0]
	}
	for i := e.exHead; i < len(e.express); i++ {
		e.express[i] = event{}
	}
	e.express = e.express[:0]
	e.exHead = 0
	e.occupied = 0
	e.now, e.seq, e.processed = 0, 0, 0
	e.pending, e.maxPending = 0, 0
	e.pendIntegral = 0
	e.stopped, e.running = false, false
	e.horizon = 0
	e.perturb, e.eventHook, e.monotone, e.idleHook = nil, nil, nil, nil
}
