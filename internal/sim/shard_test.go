package sim

import (
	"testing"
)

// runScript schedules a deterministic pseudo-random event set on e —
// including events that schedule children mid-run — and returns the
// order in which event ids executed. The schedule depends only on seed,
// never on the shard layout, so any two engines given the same seed
// must replay identically.
func runScript(e *Engine, seed uint64, n int, express bool) []int {
	r := NewRNG(seed)
	var order []int
	id := 0
	for i := 0; i < n; i++ {
		id++
		myID := id
		shard := r.Intn(97) // deliberately not a multiple of any shard count
		at := Time(r.Intn(int(50 * Nanosecond)))
		spawn := r.Intn(4) == 0
		childDelay := Time(r.Intn(int(5 * Nanosecond)))
		e.AtShard(shard, at, func() {
			order = append(order, myID)
			if spawn {
				childID := -myID
				fn := func() { order = append(order, childID) }
				if !express || !e.TryExpress(childDelay, fn) {
					e.ScheduleShard(shard+1, childDelay, fn)
				}
			}
		})
	}
	e.Run(Second)
	return order
}

// TestShardMergeTotalOrder is the merge-rule property test: the same
// event script must pop in exactly the same total order at every shard
// count, because the dispatcher orders by the global (time, sequence)
// pair and sequence numbers are assigned at scheduling time,
// independent of shard placement.
func TestShardMergeTotalOrder(t *testing.T) {
	for _, seed := range []uint64{1, 42, 7777} {
		ref := runScript(NewEngine(), seed, 500, false)
		if len(ref) < 500 {
			t.Fatalf("seed %d: reference ran %d events", seed, len(ref))
		}
		for _, shards := range []int{1, 2, 3, 8, 64} {
			got := runScript(NewEngineSharded(shards), seed, 500, false)
			if !equalInts(got, ref) {
				t.Fatalf("seed %d: %d-shard pop order diverges from single heap", seed, shards)
			}
		}
	}
}

// TestExpressLaneEquivalence checks that routing eligible events through
// TryExpress instead of the heaps changes nothing about execution order.
func TestExpressLaneEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 99} {
		for _, shards := range []int{1, 4} {
			plain := runScript(NewEngineSharded(shards), seed, 400, false)
			express := runScript(NewEngineSharded(shards), seed, 400, true)
			if !equalInts(plain, express) {
				t.Fatalf("seed %d shards %d: express-lane order diverges from heap order", seed, shards)
			}
		}
	}
}

// TestExpressLaneRejections pins the decline conditions: outside Run,
// with a perturbation hook installed, past the horizon, and out of time
// order.
func TestExpressLaneRejections(t *testing.T) {
	e := NewEngine()
	if e.TryExpress(0, func() {}) {
		t.Fatal("TryExpress accepted outside Run")
	}
	e.Schedule(Nanosecond, func() {
		if !e.TryExpress(Nanosecond, func() {}) {
			t.Error("TryExpress rejected a plain in-horizon event")
		}
		// Earlier than the lane tail just scheduled above.
		if e.TryExpress(0, func() {}) {
			t.Error("TryExpress accepted an out-of-order event")
		}
		if e.TryExpress(Second, func() {}) {
			t.Error("TryExpress accepted an event past the horizon")
		}
	})
	e.Run(10 * Nanosecond)

	e2 := NewEngine()
	e2.SetPerturb(func(d Time) Time { return d })
	e2.Schedule(0, func() {
		if e2.TryExpress(Nanosecond, func() {}) {
			t.Error("TryExpress accepted with a perturbation hook installed")
		}
	})
	e2.Run(Second)
}

// TestExpressLaneBacklogCap verifies the lane pushes overflow back to
// the caller once its backlog bound is hit, and that pending/processed
// accounting still matches.
func TestExpressLaneBacklogCap(t *testing.T) {
	e := NewEngine()
	accepted, ran := 0, 0
	e.Schedule(0, func() {
		for i := 0; i < expressBacklog+10; i++ {
			if e.TryExpress(Nanosecond, func() { ran++ }) {
				accepted++
			} else {
				e.Schedule(Nanosecond, func() { ran++ })
			}
		}
	})
	e.Run(Second)
	if accepted != expressBacklog {
		t.Fatalf("lane accepted %d events, want cap %d", accepted, expressBacklog)
	}
	if ran != expressBacklog+10 {
		t.Fatalf("ran %d events, want %d", ran, expressBacklog+10)
	}
	if e.Pending() != 0 || e.Processed() != uint64(expressBacklog+11) {
		t.Fatalf("pending=%d processed=%d after drain", e.Pending(), e.Processed())
	}
}

// TestPendingAccountingSharded checks Pending/MaxPending span all shards
// and the express lane.
func TestPendingAccountingSharded(t *testing.T) {
	e := NewEngineSharded(4)
	for i := 0; i < 10; i++ {
		e.AtShard(i, Time(i)*Nanosecond, func() {})
	}
	if e.Pending() != 10 || e.MaxPending() != 10 {
		t.Fatalf("pending=%d max=%d, want 10/10", e.Pending(), e.MaxPending())
	}
	e.Run(Second)
	if e.Pending() != 0 || e.MaxPending() != 10 || e.Processed() != 10 {
		t.Fatalf("after run: pending=%d max=%d processed=%d", e.Pending(), e.MaxPending(), e.Processed())
	}
}

// TestShiftPendingAndJumpClock exercises the fast-forward hooks: a
// uniform shift preserves relative order, JumpClock credits skipped
// events to Processed, and overtaking a pending event panics.
func TestShiftPendingAndJumpClock(t *testing.T) {
	e := NewEngineSharded(2)
	var fired []Time
	e.AtShard(0, 10*Nanosecond, func() { fired = append(fired, e.Now()) })
	e.AtShard(1, 20*Nanosecond, func() { fired = append(fired, e.Now()) })
	e.ShiftPending(100 * Nanosecond)
	e.JumpClock(105*Nanosecond, 7)
	if e.Processed() != 7 {
		t.Fatalf("processed = %d after JumpClock credit, want 7", e.Processed())
	}
	e.Run(Second)
	if len(fired) != 2 || fired[0] != 110*Nanosecond || fired[1] != 120*Nanosecond {
		t.Fatalf("shifted events fired at %v", fired)
	}
	if e.Processed() != 9 {
		t.Fatalf("processed = %d, want 9", e.Processed())
	}

	defer func() {
		if recover() == nil {
			t.Fatal("JumpClock overtaking a pending event did not panic")
		}
	}()
	e2 := NewEngine()
	e2.At(Nanosecond, func() {})
	e2.JumpClock(2*Nanosecond, 0)
}

// TestEngineReset verifies a reset engine replays a script identically
// to a fresh one — the arena-reuse contract.
func TestEngineReset(t *testing.T) {
	fresh := runScript(NewEngineSharded(4), 42, 300, true)
	e := NewEngineSharded(4)
	_ = runScript(e, 7, 300, true)
	e.Reset()
	if e.Now() != 0 || e.Pending() != 0 || e.Processed() != 0 || e.MaxPending() != 0 {
		t.Fatalf("Reset left state: now=%v pending=%d processed=%d max=%d",
			e.Now(), e.Pending(), e.Processed(), e.MaxPending())
	}
	reused := runScript(e, 42, 300, true)
	if !equalInts(fresh, reused) {
		t.Fatal("reset engine diverges from a fresh engine on the same script")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BenchmarkEventHeapPushPop pins shard-local heap cost: a steady-state
// push/pop mix at a fixed queue depth, the pattern the dispatcher
// produces while a cell is in flight.
func BenchmarkEventHeapPushPop(b *testing.B) {
	var h eventHeap
	r := NewRNG(1)
	const depth = 256
	for i := 0; i < depth; i++ {
		h.push(event{at: Time(r.Intn(1 << 20)), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		ev.at += Time(r.Intn(1 << 12))
		ev.seq = uint64(depth + i)
		h.push(ev)
	}
}
