package sim

import (
	"strings"
	"testing"
)

// The tests in this file cover the engine's fault/invariant hooks:
// delay perturbation (SetPerturb), the per-event hook (SetEventHook),
// and event-time monotonicity checking (SetMonotoneCheck).

func TestPerturbAppliesToScheduleNotAt(t *testing.T) {
	eng := NewEngine()
	eng.SetPerturb(func(d Time) Time { return 2 * d })
	var schedAt, atAt Time
	eng.Schedule(10*Nanosecond, func() { schedAt = eng.Now() })
	eng.At(30*Nanosecond, func() { atAt = eng.Now() })
	eng.Drain()
	if schedAt != 20*Nanosecond {
		t.Fatalf("Schedule(10ns) under 2x perturb fired at %v, want 20ns", schedAt)
	}
	// Absolute times anchor measurement windows; perturbing them would
	// corrupt every measured metric, not just latencies.
	if atAt != 30*Nanosecond {
		t.Fatalf("At(30ns) fired at %v, want exactly 30ns", atAt)
	}
}

func TestPerturbNegativeResultClamps(t *testing.T) {
	eng := NewEngine()
	eng.SetPerturb(func(d Time) Time { return -5 * Nanosecond })
	fired := false
	eng.Schedule(10*Nanosecond, func() { fired = true })
	eng.Drain()
	if !fired || eng.Now() != 0 {
		t.Fatalf("fired=%v now=%v, want immediate execution at t=0", fired, eng.Now())
	}
}

func TestEventHookSeesOneBasedCounts(t *testing.T) {
	eng := NewEngine()
	var counts []uint64
	eng.SetEventHook(func(n uint64) { counts = append(counts, n) })
	for i := 0; i < 3; i++ {
		eng.Schedule(Time(i)*Nanosecond, func() {})
	}
	eng.Drain()
	if len(counts) != 3 || counts[0] != 1 || counts[2] != 3 {
		t.Fatalf("hook counts = %v, want [1 2 3]", counts)
	}
}

func TestMonotoneCheckFiresOnPastEvent(t *testing.T) {
	for _, loop := range []string{"run", "drain"} {
		eng := NewEngine()
		var got error
		eng.SetMonotoneCheck(func(err error) { got = err })
		eng.Schedule(10*Nanosecond, func() {})
		eng.Drain() // clock now at 10ns
		// No production path can enqueue into the past (At clamps);
		// PushRaw bypasses the clamp to model a corrupted heap.
		eng.PushRaw(4*Nanosecond, func() {})
		if loop == "run" {
			eng.Run(20 * Nanosecond)
		} else {
			eng.Drain()
		}
		if got == nil {
			t.Fatalf("%s: past-timestamped event not reported", loop)
		}
		if !strings.Contains(got.Error(), "event time moved backwards") ||
			!strings.Contains(got.Error(), "t=4.000ns") {
			t.Fatalf("%s: report %q lacks the offending timestamp", loop, got)
		}
	}
}

func TestMonotoneCheckSilentOnCleanRun(t *testing.T) {
	eng := NewEngine()
	var got error
	eng.SetMonotoneCheck(func(err error) { got = err })
	for i := 0; i < 100; i++ {
		eng.Schedule(Time(100-i)*Nanosecond, func() {
			eng.Schedule(5*Nanosecond, func() {})
		})
	}
	eng.Drain()
	if got != nil {
		t.Fatalf("clean schedule reported a violation: %v", got)
	}
}
