package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64). Simulations must not use math/rand's global state:
// every stochastic decision in the simulator draws from an explicitly
// seeded RNG so that experiments replay identically.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds produce
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [0, d). A non-positive d yields 0,
// which is convenient for "jitter up to d" call sites.
func (r *RNG) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(d))
}

// Exp returns an exponentially distributed Time with the given mean,
// used for randomized think times in open-loop workloads. A non-positive
// mean yields 0.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	return Time(-float64(mean) * math.Log(u))
}

// Split derives a new independent generator from r, for handing one
// stream per simulated thread out of a single experiment seed.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

// Reseed resets r to the exact state of NewRNG(seed), letting pooled
// simulation state reuse generator objects without allocating: a reseeded
// RNG is indistinguishable from a fresh one.
func (r *RNG) Reseed(seed uint64) { r.state = seed }

// SplitInto reseeds dst from r's stream, the allocation-free equivalent
// of dst = r.Split().
func (r *RNG) SplitInto(dst *RNG) { dst.state = r.Uint64() }
