package sim

import (
	"testing"
)

// FuzzShardMerge feeds arbitrary (timestamp, shard-key) event sets to
// engines at several shard counts and requires the execution order to
// replay identically everywhere — the sharded merge must be a total
// deterministic order no matter how adversarial the timestamps (ties,
// zero, bursts) or the shard assignment.
func FuzzShardMerge(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 2})
	f.Add([]byte{255, 0, 255, 1, 255, 2, 0, 3})
	f.Add([]byte{10, 200, 10, 200, 10, 200, 10, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		if len(data) > 2048 {
			data = data[:2048]
		}
		type spec struct {
			at    Time
			shard int
		}
		var specs []spec
		for i := 0; i+1 < len(data); i += 2 {
			specs = append(specs, spec{
				// Compress timestamps into a narrow range to force ties.
				at:    Time(data[i]%32) * Nanosecond,
				shard: int(data[i+1]),
			})
		}
		replay := func(shards int) []int {
			e := NewEngineSharded(shards)
			var order []int
			for i, sp := range specs {
				i, sp := i, sp
				e.AtShard(sp.shard, sp.at, func() {
					order = append(order, i)
					// Every fourth event spawns a child, exercising
					// mid-run scheduling and the express lane.
					if i%4 == 0 {
						child := -i - 1
						fn := func() { order = append(order, child) }
						if !e.TryExpress(Nanosecond, fn) {
							e.ScheduleShard(sp.shard+1, Nanosecond, fn)
						}
					}
				})
			}
			e.Run(Second)
			return order
		}
		ref := replay(1)
		for _, shards := range []int{2, 3, 8, 64} {
			if got := replay(shards); !equalInts(got, ref) {
				t.Fatalf("shard count %d replays a different order than 1 shard\nref: %v\ngot: %v", shards, ref, got)
			}
		}
	})
}
