package sim

// PushRaw injects an event directly into the heap, bypassing the At
// clamp. It exists only so tests can construct the corrupted-heap state
// (an event timestamped in the past) the monotonicity checker guards
// against; no production path can create it.
func (e *Engine) PushRaw(at Time, fn func()) {
	e.seq++
	if len(e.shards) == 0 {
		e.shards = make([]eventHeap, 1)
	}
	e.shards[0].push(event{at: at, seq: e.seq, fn: fn})
	e.occupied |= 1
	e.pending++
	if e.pending > e.maxPending {
		e.maxPending = e.pending
	}
}
