package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Nanosecond != 1000*Picosecond {
		t.Fatalf("Nanosecond = %d ps", int64(Nanosecond))
	}
	if Second != 1_000_000_000_000*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := (2 * Nanosecond).Nanoseconds(); got != 2 {
		t.Errorf("Nanoseconds() = %v, want 2", got)
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds() = %v, want 0.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(30*Nanosecond, func() { order = append(order, 3) })
	e.Schedule(10*Nanosecond, func() { order = append(order, 1) })
	e.Schedule(20*Nanosecond, func() { order = append(order, 2) })
	e.Run(Second)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran in order %v", order)
	}
	if e.Now() != Second {
		t.Fatalf("clock = %v, want horizon when queue drains", e.Now())
	}
}

func TestEngineQueueTimeIntegral(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func() {})
	e.Schedule(30*Nanosecond, func() {})
	e.Run(Second)
	// Two events outstanding over [0,10ns), one over [10ns,30ns), none
	// afterwards — the idle advance to the horizon contributes nothing.
	want := 2*10*Nanosecond + 1*20*Nanosecond
	if got := e.QueueTimeIntegral(); got != want {
		t.Fatalf("QueueTimeIntegral = %v, want %v", got, want)
	}
	e.Reset()
	if got := e.QueueTimeIntegral(); got != 0 {
		t.Fatalf("QueueTimeIntegral after Reset = %v, want 0", got)
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run(Second)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: pos %d got %d", i, v)
		}
	}
}

func TestEngineHorizon(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(10*Nanosecond, func() { ran++ })
	e.Schedule(20*Nanosecond, func() { ran++ })
	e.Schedule(30*Nanosecond, func() { ran++ })
	e.Run(20 * Nanosecond) // inclusive horizon
	if ran != 2 {
		t.Fatalf("ran %d events before horizon, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run(Second)
	if ran != 3 {
		t.Fatalf("ran %d events total, want 3", ran)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	depth := 0
	var step func()
	step = func() {
		depth++
		if depth < 10 {
			e.Schedule(Nanosecond, step)
		}
	}
	e.Schedule(0, step)
	e.Run(Second)
	if depth != 10 {
		t.Fatalf("nested chain depth = %d, want 10", depth)
	}
	if e.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", e.Processed())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(Nanosecond, func() { ran++; e.Stop() })
	e.Schedule(2*Nanosecond, func() { ran++ })
	e.Run(Second)
	if ran != 1 {
		t.Fatalf("Stop did not halt the loop: ran=%d", ran)
	}
	// Run again resumes.
	e.Run(Second)
	if ran != 2 {
		t.Fatalf("resume after Stop: ran=%d, want 2", ran)
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(10*Nanosecond, func() {
		e.Schedule(-5*Nanosecond, func() {
			if e.Now() != 10*Nanosecond {
				t.Errorf("negative delay fired at %v", e.Now())
			}
		})
	})
	e.Run(Second)
}

func TestEngineAtClampsPast(t *testing.T) {
	e := NewEngine()
	fired := Time(-1)
	e.Schedule(10*Nanosecond, func() {
		e.At(3*Nanosecond, func() { fired = e.Now() })
	})
	e.Run(Second)
	if fired != 10*Nanosecond {
		t.Fatalf("At in the past fired at %v, want clamped to 10ns", fired)
	}
}

func TestEngineDrain(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.Schedule(5*Second, func() { ran++ })
	end := e.Drain()
	if ran != 1 || end != 5*Second {
		t.Fatalf("Drain ran=%d end=%v", ran, end)
	}
}

func TestEngineMonotonicClock(t *testing.T) {
	e := NewEngine()
	r := NewRNG(42)
	last := Time(0)
	bad := false
	for i := 0; i < 1000; i++ {
		e.Schedule(r.Duration(Microsecond), func() {
			if e.Now() < last {
				bad = true
			}
			last = e.Now()
		})
	}
	e.Run(Second)
	if bad {
		t.Fatal("clock moved backwards")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	a2 := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(1)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const mean = 100 * Nanosecond
	var sum Time
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := float64(sum) / n
	want := float64(mean)
	if got < 0.97*want || got > 1.03*want {
		t.Fatalf("Exp mean = %v ps, want ~%v ps", got, want)
	}
	if r.Exp(0) != 0 || r.Exp(-Nanosecond) != 0 {
		t.Fatal("Exp of non-positive mean should be 0")
	}
}

func TestRNGDurationBounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 10000; i++ {
		d := r.Duration(50 * Nanosecond)
		if d < 0 || d >= 50*Nanosecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Fatal("Duration(0) != 0")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams collide: %d/1000", same)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Nanosecond, func() {})
		if e.Pending() > 1024 {
			e.Drain()
		}
	}
	e.Drain()
}
