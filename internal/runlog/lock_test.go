//go:build unix

package runlog

import (
	"errors"
	"strings"
	"testing"
)

// TestCacheWriterLockExcludesSecondWriter: one live writer per run
// directory. A second OpenCache must fail fast with an error naming
// the holder, and the lock must release on Close.
func TestCacheWriterLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(dir); err == nil {
		t.Fatal("second OpenCache succeeded; two writers would interleave appends")
	} else if !strings.Contains(err.Error(), "locked by") {
		t.Fatalf("contention error = %v, want it to name the holder", err)
	}
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("OpenCache after Close: %v (lock not released)", err)
	}
	c2.Close()
}

// TestCacheReadOnlyBypassesLock: read-only opens coexist with a live
// writer (that is their point — -checkmanifest against a running
// daemon) and refuse writes.
func TestCacheReadOnlyBypassesLock(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Put("k", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCacheReadOnly(dir)
	if err != nil {
		t.Fatalf("OpenCacheReadOnly alongside a writer: %v", err)
	}
	if raw, _, ok := r.Get("k"); !ok || string(raw) != `{"v":1}` {
		t.Fatalf("read-only Get = (%s, %v), want the written entry", raw, ok)
	}
	if _, err := r.Put("k2", []byte(`{}`)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put = %v, want ErrReadOnly", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("read-only Close: %v", err)
	}
	// The writer is unaffected by the reader's lifecycle.
	if _, err := w.Put("k3", []byte(`{"v":3}`)); err != nil {
		t.Fatalf("writer Put after reader Close: %v", err)
	}
}
