// Package runlog gives long experiment runs a durable, structured
// identity on disk. A run directory holds two JSON-lines files:
//
//	manifest.jsonl — one record per simulation cell (config key, wall
//	                 time, ops, result digest, error/panic), one record
//	                 per experiment, and a trailing run summary. This is
//	                 the observability stream: it answers "what ran, how
//	                 long did it take, what failed" without re-parsing
//	                 rendered tables.
//	cells.jsonl    — the content-keyed cell-result cache: one record per
//	                 completed cell mapping its config key to the cell's
//	                 JSON-encoded result. A later run pointed at the same
//	                 directory (resume) replays these instead of
//	                 re-simulating, so only missing, failed, or changed
//	                 cells run again.
//
// Both files are append-only and tolerate a truncated final line, so a
// run killed mid-write loses at most the cell that was being recorded.
//
// In the model pipeline (ARCHITECTURE.md) this package is the
// persistence arm of the observability layer: the harness's cell
// scheduler writes both streams, and the byte-exact round-trip
// contract on cached results (DESIGN.md, "Run manifests and resume")
// is what lets cell metrics snapshots (internal/metrics) survive a
// resume unchanged.
package runlog

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record types stored in manifest.jsonl, discriminated by Type.
const (
	TypeCell = "cell" // one simulation cell
	TypeExp  = "exp"  // one experiment (a group of cells)
	TypeRun  = "run"  // trailing run summary
)

// CellRecord describes one completed (or failed) simulation cell.
type CellRecord struct {
	Type string `json:"type"`
	// Exp is the experiment ID the cell belongs to (e.g. "F3").
	Exp string `json:"exp"`
	// Cell is the cell's index within its experiment.
	Cell int `json:"cell"`
	// Key is the cell's full config key — experiment ID, base options,
	// and the per-cell configuration. Cells with equal keys compute the
	// same result; the key is what the resume cache is addressed by.
	// The per-cell part identifies both halves of a cell by content:
	// machines as "Name@digest" (machine.Key) and workloads as a
	// "/wl@digest" suffix (workload.Spec.Digest), so two differently
	// parameterized machines or workload specs sharing a name never
	// share cache entries.
	Key string `json:"key,omitempty"`
	// Digest is a short content hash of the JSON-encoded result.
	Digest string `json:"digest,omitempty"`
	// Cached marks a cell replayed from the resume cache.
	Cached bool `json:"cached,omitempty"`
	// WallMS is the wall-clock time the cell took, in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SimNS is the simulated measurement window, when the cell's result
	// reports one (nanoseconds of simulated time).
	SimNS float64 `json:"sim_ns,omitempty"`
	// Ops is the cell's completed-operation count, when reported.
	Ops uint64 `json:"ops,omitempty"`
	// Error is the cell's error text; Panic marks errors that were
	// recovered panics, and Stack carries the panicking cell's stack.
	Error string `json:"error,omitempty"`
	Panic bool   `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
	// TimedOut marks errors raised by the cell watchdog (the cell
	// exceeded its wall-clock deadline).
	TimedOut bool `json:"timed_out,omitempty"`
	// Canceled marks cells that never ran because the run's context was
	// canceled (or past its deadline) when their turn came.
	Canceled bool `json:"canceled,omitempty"`
	// Attempts is how many times the cell was attempted when retries
	// were enabled (recorded only when > 1).
	Attempts int `json:"attempts,omitempty"`
}

// ExpRecord summarizes one experiment's cells.
type ExpRecord struct {
	Type   string  `json:"type"`
	Exp    string  `json:"exp"`
	Cells  int     `json:"cells"`
	Cached int     `json:"cached"`
	Failed int     `json:"failed"`
	WallMS float64 `json:"wall_ms"`
	Error  string  `json:"error,omitempty"`
}

// RunRecord is the trailing run summary.
type RunRecord struct {
	Type        string  `json:"type"`
	Experiments int     `json:"experiments"`
	Failed      int     `json:"failed"`
	Cells       int     `json:"cells"`
	Cached      int     `json:"cached"`
	FailedCells int     `json:"failed_cells"`
	WallMS      float64 `json:"wall_ms"`
	// Resumed marks manifests appended by a -resume invocation.
	Resumed bool `json:"resumed,omitempty"`
}

// Digest returns the short content hash used for result digests: the
// first 16 hex characters of SHA-256.
func Digest(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// Writer appends manifest records to <dir>/manifest.jsonl and keeps the
// running totals for the trailing run summary. Methods are safe for
// concurrent use by scheduler workers.
type Writer struct {
	mu      sync.Mutex
	f       *os.File
	w       *bufio.Writer
	start   time.Time
	resumed bool

	exps, failedExps           int
	cells, cached, failedCells int
}

const (
	manifestFile = "manifest.jsonl"
	cacheFile    = "cells.jsonl"
)

// Create starts a fresh run directory: it truncates any existing
// manifest and cell cache so stale results cannot leak into a new run.
func Create(dir string) (*Writer, error) {
	return newWriter(dir, false)
}

// Append opens an existing run directory for a resumed run: manifest
// records are appended and the cell cache is preserved.
func Append(dir string) (*Writer, error) {
	return newWriter(dir, true)
}

func newWriter(dir string, resume bool) (*Writer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	mode := os.O_CREATE | os.O_WRONLY
	if resume {
		mode |= os.O_APPEND
	} else {
		mode |= os.O_TRUNC
		// A fresh run invalidates the cache too: OpenCache on this
		// directory must not see another run's cells.
		if err := os.Remove(filepath.Join(dir, cacheFile)); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, manifestFile), mode, 0o644)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, w: bufio.NewWriter(f), start: time.Now(), resumed: resume}, nil
}

func (w *Writer) emit(v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := w.w.Write(b); err != nil {
		return err
	}
	// Flush per record: a killed run keeps everything recorded so far.
	return w.w.Flush()
}

// Cell records one completed or failed cell.
func (w *Writer) Cell(r CellRecord) error {
	r.Type = TypeCell
	w.mu.Lock()
	defer w.mu.Unlock()
	w.cells++
	if r.Cached {
		w.cached++
	}
	if r.Error != "" {
		w.failedCells++
	}
	return w.emit(r)
}

// Totals returns the cell counters accumulated so far: total cells,
// cache-replayed cells, and failed cells. Drivers diff snapshots taken
// around an experiment to fill its ExpRecord.
func (w *Writer) Totals() (cells, cached, failed int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.cells, w.cached, w.failedCells
}

// Exp records one experiment's summary.
func (w *Writer) Exp(r ExpRecord) error {
	r.Type = TypeExp
	w.mu.Lock()
	defer w.mu.Unlock()
	w.exps++
	if r.Error != "" {
		w.failedExps++
	}
	return w.emit(r)
}

// Close writes the trailing run summary and closes the manifest.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.emit(RunRecord{
		Type:        TypeRun,
		Experiments: w.exps,
		Failed:      w.failedExps,
		Cells:       w.cells,
		Cached:      w.cached,
		FailedCells: w.failedCells,
		WallMS:      float64(time.Since(w.start)) / float64(time.Millisecond),
		Resumed:     w.resumed,
	})
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// cacheEntry is one line of cells.jsonl.
type cacheEntry struct {
	Key    string          `json:"key"`
	Digest string          `json:"digest"`
	Value  json.RawMessage `json:"value"`
	// fromDisk marks entries read from cells.jsonl at open time (never
	// serialized): a Get hit on one of these is a replay of an earlier
	// run's cell, not a rediscovery of something this run stored.
	fromDisk bool
}

// Quarantine describes one corrupt cache line that was isolated at load
// time instead of being trusted: the cell it held is simply recomputed.
type Quarantine struct {
	// Line is the 1-based line number in cells.jsonl.
	Line int
	// Key is the entry's config key, when it could still be recovered
	// from the corrupt line (a digest mismatch keeps the key; a torn or
	// unparseable line usually loses it).
	Key string
	// Reason says what was wrong with the line.
	Reason string
}

// Cache is the content-keyed cell-result cache. Get and Put are safe
// for concurrent use. Entries live in memory and are appended to
// <dir>/cells.jsonl as they are stored; the newest entry for a key
// wins on load.
//
// A writable cache holds an advisory file lock (<dir>/cells.lock) for
// its whole lifetime, so two processes can never interleave appends
// into cells.jsonl: the second OpenCache on a live directory fails
// with a "locked by pid N" error instead of silently corrupting the
// log. Concurrent readers use OpenCacheReadOnly, which takes no lock
// and refuses Put.
type Cache struct {
	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	lock        *os.File
	readOnly    bool
	entries     map[string]cacheEntry
	loaded      int
	quarantined []Quarantine

	// Get/Put traffic counters; see CacheStats.
	hits, misses, replayed uint64
}

// CacheStats is a point-in-time snapshot of a cache's traffic: how many
// Gets hit, how many missed (the cell had to simulate), and how many of
// the hits replayed an entry loaded from disk at open time (a resumed
// run reusing an earlier run's cell, as opposed to re-reading a cell
// this run stored). The daemon surfaces these on /healthz so operators
// can see resume effectiveness without parsing manifests.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Replayed uint64 `json:"replayed"`
}

// Stats returns a snapshot of the cache's Get traffic counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Replayed: c.replayed}
}

// ErrReadOnly is returned by Put on a cache opened with
// OpenCacheReadOnly.
var ErrReadOnly = fmt.Errorf("runlog: cache is open read-only")

// lockFile is the advisory lock guarding cells.jsonl writers. The file
// holds the owning process's pid (for the error message); the lock
// itself is a kernel flock on the open descriptor, so it cannot
// outlive a crashed owner. The file is deliberately never removed —
// unlinking a lock file races a concurrent opener onto a dead inode.
const lockFile = "cells.lock"

// OpenCache loads any existing cell cache in dir and opens it for
// appending, taking the directory's writer lock. Corruption is
// quarantined rather than fatal: a truncated final line (killed run),
// an unparseable line (bad disk, editor mishap), and an entry whose
// stored digest no longer matches its payload (bit rot) are each
// recorded in Quarantined and excluded from the cache, so the affected
// cells recompute instead of replaying garbage or crashing the run. A
// directory whose writer lock is already held (another live process)
// fails with an error naming the holder's pid.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := acquireLock(dir)
	if err != nil {
		return nil, err
	}
	entries, quarantined, err := loadCacheFile(dir)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, cacheFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		releaseLock(lock)
		return nil, err
	}
	return &Cache{f: f, w: bufio.NewWriter(f), lock: lock, entries: entries, loaded: len(entries), quarantined: quarantined}, nil
}

// OpenCacheReadOnly loads the cell cache in dir without taking the
// writer lock and without opening an append stream: any number of
// read-only opens may coexist with one live writer. Put fails with
// ErrReadOnly. A missing cache loads as empty, like OpenCache on a
// fresh directory.
func OpenCacheReadOnly(dir string) (*Cache, error) {
	entries, quarantined, err := loadCacheFile(dir)
	if err != nil {
		return nil, err
	}
	return &Cache{readOnly: true, entries: entries, loaded: len(entries), quarantined: quarantined}, nil
}

// loadCacheFile parses cells.jsonl into live entries plus quarantined
// corrupt lines; a missing file is an empty cache.
func loadCacheFile(dir string) (map[string]cacheEntry, []Quarantine, error) {
	entries := map[string]cacheEntry{}
	var quarantined []Quarantine
	b, err := os.ReadFile(filepath.Join(dir, cacheFile))
	if err != nil {
		if os.IsNotExist(err) {
			return entries, nil, nil
		}
		return nil, nil, err
	}
	lines := splitLines(b)
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e cacheEntry
		if err := json.Unmarshal(line, &e); err != nil {
			reason := fmt.Sprintf("unparseable entry: %v", err)
			if i == len(lines)-1 {
				reason = "torn final write (killed run)"
			}
			quarantined = append(quarantined, Quarantine{Line: i + 1, Reason: reason})
			continue
		}
		if got := Digest(e.Value); got != e.Digest {
			quarantined = append(quarantined, Quarantine{
				Line:   i + 1,
				Key:    e.Key,
				Reason: fmt.Sprintf("digest mismatch: stored %s, payload hashes to %s", e.Digest, got),
			})
			continue
		}
		e.fromDisk = true
		entries[e.Key] = e
	}
	return entries, quarantined, nil
}

// Quarantined returns the corrupt lines isolated when the cache was
// loaded, in file order. Drivers report them so dropped results are
// visible, not silent.
func (c *Cache) Quarantined() []Quarantine { return c.quarantined }

// Get returns the cached result and digest for key, if present, and
// counts the lookup in the cache's traffic stats.
func (c *Cache) Get(key string) (json.RawMessage, string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
		if e.fromDisk {
			c.replayed++
		}
	} else {
		c.misses++
	}
	return e.Value, e.Digest, ok
}

// Put stores a cell result under key and returns its digest.
func (c *Cache) Put(key string, value json.RawMessage) (string, error) {
	if c.readOnly {
		return "", ErrReadOnly
	}
	e := cacheEntry{Key: key, Digest: Digest(value), Value: value}
	b, err := json.Marshal(e)
	if err != nil {
		return "", err
	}
	b = append(b, '\n')
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = e
	if _, err := c.w.Write(b); err != nil {
		return "", err
	}
	return e.Digest, c.w.Flush()
}

// Len returns the number of cached cells; Loaded returns how many of
// them were read from disk at open time.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Loaded returns the number of entries read from disk when the cache
// was opened (before this run added any).
func (c *Cache) Loaded() int { return c.loaded }

// Close flushes and closes the cache's append log and releases the
// directory's writer lock. Closing a read-only cache is a no-op.
func (c *Cache) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.readOnly {
		return nil
	}
	err := c.w.Flush()
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	releaseLock(c.lock)
	return err
}

func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// Validate parses a run directory's manifest and cell cache and returns
// a summary line, or an error describing the first malformed record. It
// is the check behind `atomicsim -checkmanifest`. A torn final manifest
// line — the normal residue of a killed run — is not an error: the cell
// being recorded at the kill simply was not recorded, and a resume will
// recompute it. Interior corruption still fails loudly, and quarantined
// cache lines are surfaced in the summary.
func Validate(dir string) (string, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return "", err
	}
	var cells, exps, runs, failed, torn int
	lines := splitLines(b)
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec struct {
			Type  string `json:"type"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			if i == len(lines)-1 {
				torn++
				continue
			}
			return "", fmt.Errorf("runlog: %s line %d: %w", manifestFile, i+1, err)
		}
		switch rec.Type {
		case TypeCell:
			cells++
			if rec.Error != "" {
				failed++
			}
		case TypeExp:
			exps++
		case TypeRun:
			runs++
		default:
			return "", fmt.Errorf("runlog: %s line %d: unknown record type %q", manifestFile, i+1, rec.Type)
		}
	}
	if runs == 0 {
		return "", fmt.Errorf("runlog: %s has no run summary (run did not complete)", manifestFile)
	}
	// Read-only: validation must work on a directory whose writer lock
	// is held by a live daemon, and must not create files.
	c, err := OpenCacheReadOnly(dir)
	if err != nil {
		return "", err
	}
	defer c.Close()
	s := fmt.Sprintf("manifest ok: %d experiments, %d cells (%d failed), %d run summaries; cache: %d cells",
		exps, cells, failed, runs, c.Len())
	if torn > 0 {
		s += "; 1 torn final line (cell not recorded)"
	}
	if q := len(c.Quarantined()); q > 0 {
		s += fmt.Sprintf("; %d cache line(s) quarantined", q)
	}
	return s, nil
}
