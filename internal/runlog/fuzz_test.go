package runlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzCacheLoad feeds arbitrary bytes to the cell-cache loader. The
// contract under corruption is quarantine, never crash: OpenCache must
// succeed on any input, and every entry it does serve must carry a
// digest that matches its payload. Run with
// `go test -fuzz FuzzCacheLoad ./internal/runlog`.
func FuzzCacheLoad(f *testing.F) {
	good, _ := json.Marshal(map[string]int{"v": 1})
	f.Add([]byte(""))
	f.Add([]byte(`{"key":"k","digest":"0000000000000000","value":{"v":1}}` + "\n"))
	f.Add([]byte(`{"key":"k","digest":"` + Digest(good) + `","value":` + string(good) + `}` + "\n"))
	f.Add([]byte(`{"key":"k","dig` /* torn */))
	f.Add([]byte("\n\n\x00garbage\n{\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "cells.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := OpenCache(dir)
		if err != nil {
			t.Fatalf("OpenCache failed on corrupt input instead of quarantining: %v", err)
		}
		defer c.Close()
		for _, q := range c.Quarantined() {
			if q.Line <= 0 || q.Reason == "" {
				t.Fatalf("malformed quarantine record: %+v", q)
			}
		}
		// Whatever survived must be internally consistent.
		var lines [][]byte
		for _, l := range splitLines(data) {
			lines = append(lines, l)
		}
		for _, line := range lines {
			var e cacheEntry
			if json.Unmarshal(line, &e) != nil || e.Key == "" {
				continue
			}
			if v, digest, ok := c.Get(e.Key); ok {
				if Digest(v) != digest {
					t.Fatalf("served entry %q with digest %q over payload hashing to %q", e.Key, digest, Digest(v))
				}
			}
		}
	})
}

// FuzzManifestValidate feeds arbitrary bytes to the manifest validator:
// it may reject the input, but must never panic, and anything it calls
// "ok" must really contain a run summary. Run with
// `go test -fuzz FuzzManifestValidate ./internal/runlog`.
func FuzzManifestValidate(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"type":"run","experiments":1}` + "\n"))
	f.Add([]byte(`{"type":"cell","exp":"F3","cell":0}` + "\n" + `{"type":"run"}` + "\n"))
	f.Add([]byte(`{"type":"cell","exp":"F3","ce` /* torn */))
	f.Add([]byte(`{"type":"alien"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "manifest.jsonl"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		summary, err := Validate(dir)
		if err != nil {
			return // rejection is fine; panics and false "ok"s are not
		}
		if !strings.HasPrefix(summary, "manifest ok:") {
			t.Fatalf("accepted input produced summary %q", summary)
		}
		if !strings.Contains(string(data), `"run"`) {
			t.Fatalf("input without a run summary validated: %q", data)
		}
	})
}
