package runlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriterEmitsValidRecords(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cell(CellRecord{Exp: "F1", Cell: 0, Key: "F1|a", Digest: "abcd", WallMS: 1.5, Ops: 42}); err != nil {
		t.Fatal(err)
	}
	if err := w.Cell(CellRecord{Exp: "F1", Cell: 1, Key: "F1|b", Error: "boom", Panic: true, Stack: "stack"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Exp(ExpRecord{Exp: "F1", Cells: 2, Failed: 1, Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("manifest lines = %d, want 4:\n%s", len(lines), b)
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not valid JSON: %s", i+1, line)
		}
	}
	var run RunRecord
	if err := json.Unmarshal([]byte(lines[3]), &run); err != nil {
		t.Fatal(err)
	}
	if run.Type != TypeRun || run.Cells != 2 || run.FailedCells != 1 || run.Experiments != 1 || run.Failed != 1 {
		t.Fatalf("run summary = %+v", run)
	}

	sum, err := Validate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum, "2 cells (1 failed)") {
		t.Fatalf("Validate summary = %q", sum)
	}
}

func TestCreateTruncatesStaleRun(t *testing.T) {
	dir := t.TempDir()
	w, _ := Create(dir)
	c, _ := OpenCache(dir)
	if _, err := c.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	c.Close()
	w.Close()

	// A fresh Create must not see the old run's cells.
	w2, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 0 || c2.Loaded() != 0 {
		t.Fatalf("fresh run sees %d stale cells", c2.Len())
	}
}

func TestCacheRoundTripAndResume(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	val := json.RawMessage(`{"ops":7,"x":1.25}`)
	d1, err := c.Put("F3|seed=42|XeonE5/FAA/8", val)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != Digest(val) {
		t.Fatalf("digest mismatch: %s vs %s", d1, Digest(val))
	}
	// Overwrite: newest wins.
	val2 := json.RawMessage(`{"ops":9}`)
	if _, err := c.Put("F3|seed=42|XeonE5/FAA/8", val2); err != nil {
		t.Fatal(err)
	}
	c.Close()

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, digest, ok := c2.Get("F3|seed=42|XeonE5/FAA/8")
	if !ok || string(got) != string(val2) || digest != Digest(val2) {
		t.Fatalf("resume Get = %s, %s, %v", got, digest, ok)
	}
	if c2.Loaded() != 1 {
		t.Fatalf("Loaded = %d", c2.Loaded())
	}
}

func TestCacheToleratesTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	c, _ := OpenCache(dir)
	c.Put("a", json.RawMessage(`{"v":1}`))
	c.Close()
	f, err := os.OpenFile(filepath.Join(dir, "cells.jsonl"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"b","digest":"xx","value":{"v":`) // killed mid-write
	f.Close()

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("torn final line must be skipped, got %v", err)
	}
	defer c2.Close()
	if _, _, ok := c2.Get("a"); !ok {
		t.Fatal("intact entry lost")
	}
	if _, _, ok := c2.Get("b"); ok {
		t.Fatal("torn entry resurrected")
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.jsonl"), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil {
		t.Fatal("Validate accepted garbage")
	}
}

func TestDigestStable(t *testing.T) {
	if Digest([]byte("x")) != Digest([]byte("x")) {
		t.Fatal("digest not deterministic")
	}
	if len(Digest([]byte("x"))) != 16 {
		t.Fatalf("digest length = %d", len(Digest([]byte("x"))))
	}
	if Digest([]byte("x")) == Digest([]byte("y")) {
		t.Fatal("digest collision on trivial input")
	}
}

func TestCacheStatsCountsTraffic(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s != (CacheStats{}) {
		t.Fatalf("fresh cache stats = %+v, want zeros", s)
	}
	// Miss, then a hit on an entry stored this run: counted as a hit but
	// not a replay (nothing came from disk yet).
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	if _, err := c.Put("k", json.RawMessage(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	c.Get("k")
	if s := c.Stats(); s != (CacheStats{Hits: 1, Misses: 1, Replayed: 0}) {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 0 replayed", s)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the entry now comes from disk, so a hit on it is a replay.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	c2.Get("k")
	c2.Get("missing")
	if s := c2.Stats(); s != (CacheStats{Hits: 1, Misses: 1, Replayed: 1}) {
		t.Fatalf("resumed stats = %+v, want 1 hit / 1 miss / 1 replayed", s)
	}
	// Re-storing the key makes it this run's entry again: further hits
	// stop counting as replays.
	if _, err := c2.Put("k", json.RawMessage(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	c2.Get("k")
	if s := c2.Stats(); s != (CacheStats{Hits: 2, Misses: 1, Replayed: 1}) {
		t.Fatalf("post-Put stats = %+v, want 2 hits / 1 miss / 1 replayed", s)
	}
}
