//go:build !unix

package runlog

import "os"

// Non-unix platforms get no advisory locking: OpenCache degrades to
// the historical single-process contract rather than failing to build.
func flockExclusive(*os.File) error { return nil }

func flockRelease(*os.File) {}
