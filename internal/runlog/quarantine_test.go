package runlog

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomicsmodel/internal/faults"
)

// seedCache writes a fresh cache with n entries keyed k0..k(n-1) and
// returns the cells.jsonl path.
func seedCache(t *testing.T, dir string, n int) string {
	t.Helper()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, _ := json.Marshal(map[string]int{"v": i * 100})
		if _, err := c.Put(key(i), v); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "cells.jsonl")
}

func key(i int) string { return "exp|seed=1|quick=true|cell=" + string(rune('a'+i)) }

func TestTornFinalCacheLineQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := seedCache(t, dir, 3)
	if err := faults.TearFinalLine(path); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("torn cache fatal instead of quarantined: %v", err)
	}
	defer c.Close()
	if c.Loaded() != 2 {
		t.Fatalf("loaded %d entries, want the 2 intact ones", c.Loaded())
	}
	q := c.Quarantined()
	if len(q) != 1 || q[0].Line != 3 || !strings.Contains(q[0].Reason, "torn final write") {
		t.Fatalf("quarantine = %+v, want the torn line 3", q)
	}
	if _, _, ok := c.Get(key(2)); ok {
		t.Fatal("torn entry still served from cache")
	}
	// The cell recomputes: a fresh Put under the same key must land.
	if _, err := c.Put(key(2), json.RawMessage(`{"v":200}`)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get(key(2)); !ok {
		t.Fatal("recomputed entry not stored")
	}
}

func TestBitFlippedPayloadQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := seedCache(t, dir, 3)
	if err := faults.FlipPayloadByte(path, 2); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatalf("bit rot fatal instead of quarantined: %v", err)
	}
	defer c.Close()
	q := c.Quarantined()
	if len(q) != 1 || q[0].Line != 2 {
		t.Fatalf("quarantine = %+v, want line 2", q)
	}
	// A flipped payload byte either breaks the JSON or breaks the
	// digest; both must name the problem, and a digest mismatch keeps
	// the key so the report can say which cell was dropped.
	if strings.Contains(q[0].Reason, "digest mismatch") && q[0].Key != key(1) {
		t.Fatalf("digest-mismatch quarantine lost its key: %+v", q[0])
	}
	if _, _, ok := c.Get(key(1)); ok {
		t.Fatal("corrupt entry still served from cache")
	}
	for _, i := range []int{0, 2} {
		if _, _, ok := c.Get(key(i)); !ok {
			t.Errorf("intact entry %d dropped alongside the corrupt one", i)
		}
	}
}

func TestCorruptDigestQuarantined(t *testing.T) {
	dir := t.TempDir()
	path := seedCache(t, dir, 2)
	if err := faults.CorruptDigest(path, 1); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	q := c.Quarantined()
	if len(q) != 1 || !strings.Contains(q[0].Reason, "digest mismatch") || q[0].Key != key(0) {
		t.Fatalf("quarantine = %+v, want a keyed digest mismatch on line 1", q)
	}
}

func TestStaleEntryNeverReplays(t *testing.T) {
	dir := t.TempDir()
	path := seedCache(t, dir, 1)
	if err := faults.InjectStaleEntry(path, "old-exp|seed=9|stale", []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The injected entry carries a bogus digest, so it is quarantined
	// outright; even a stale entry with a valid digest would only sit
	// unused, since no current cell addresses its key.
	if _, _, ok := c.Get("old-exp|seed=9|stale"); ok {
		t.Fatal("stale injected entry replayed")
	}
	if _, _, ok := c.Get(key(0)); !ok {
		t.Fatal("legitimate entry lost")
	}
}

func TestValidateToleratesTornFinalManifestLine(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cell(CellRecord{Exp: "F3", Cell: 0, Key: "k"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "manifest.jsonl")

	// A torn final line is the normal residue of a killed run: tolerated,
	// reported, and treated as "cell not recorded".
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"cell","exp":"F3","ce`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	summary, err := Validate(dir)
	if err != nil {
		t.Fatalf("torn final line rejected: %v", err)
	}
	if !strings.Contains(summary, "1 torn final line (cell not recorded)") {
		t.Fatalf("summary %q does not report the torn line", summary)
	}
	if !strings.HasPrefix(summary, "manifest ok:") {
		t.Fatalf("summary %q lost its prefix", summary)
	}

	// Interior corruption is a different beast — the manifest is lying,
	// not merely incomplete — and must still fail loudly.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(b), "\n")
	lines[0] = "{broken json\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(dir); err == nil {
		t.Fatal("interior manifest corruption accepted")
	}
}

func TestValidateReportsQuarantinedCacheLines(t *testing.T) {
	dir := t.TempDir()
	w, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := seedCache(t, dir, 2)
	if err := faults.CorruptDigest(path, 2); err != nil {
		t.Fatal(err)
	}
	summary, err := Validate(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "1 cache line(s) quarantined") {
		t.Fatalf("summary %q does not surface the quarantine", summary)
	}
}
