package runlog

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// acquireLock opens (creating if needed) the directory's writer lock
// file and takes a non-blocking exclusive flock on it. On success the
// holder's pid is written into the file so a losing opener can say who
// owns the cache; on contention the returned error names that pid.
func acquireLock(dir string) (*os.File, error) {
	path := filepath.Join(dir, lockFile)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := flockExclusive(f); err != nil {
		holder := "unknown pid"
		if b, rerr := os.ReadFile(path); rerr == nil {
			if pid := strings.TrimSpace(string(b)); pid != "" {
				holder = "pid " + pid
			}
		}
		f.Close()
		return nil, fmt.Errorf("runlog: cell cache in %s is locked by %s (a live writer); "+
			"stop it, point this run at another directory, or open read-only", dir, holder)
	}
	// Record the owner for the contention message. Truncate first: a
	// previous owner's longer pid must not leave trailing digits.
	if err := f.Truncate(0); err == nil {
		_, _ = f.WriteAt([]byte(fmt.Sprintf("%d\n", os.Getpid())), 0)
		_ = f.Sync()
	}
	return f, nil
}

// releaseLock drops the flock and closes the lock file. The file is
// left in place: unlinking it would let a concurrent opener lock a
// dead inode while a third process locks a fresh one.
func releaseLock(f *os.File) {
	if f == nil {
		return
	}
	flockRelease(f)
	f.Close()
}
