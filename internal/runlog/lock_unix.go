//go:build unix

package runlog

import (
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive advisory lock on f.
// flock locks belong to the open file description, so they vanish with
// the process — a SIGKILL'd owner can never leave the cache wedged.
func flockExclusive(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
}

// flockRelease drops the advisory lock (closing f would too; explicit
// release keeps Close-order bugs from extending the critical section).
func flockRelease(f *os.File) {
	_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
