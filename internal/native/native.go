// Package native runs the paper's microbenchmarks on the host CPU with
// Go's sync/atomic, as a qualitative cross-check of the simulator. Go
// cannot pin goroutines to cores or control cache-line placement (the
// reason the quantitative substrate of this reproduction is the
// simulator — see DESIGN.md), but the first-order contrasts the paper
// reports are still visible natively: contended throughput does not
// scale with threads, FAA sustains a higher successful-update rate than
// a CAS loop, and private counters scale linearly.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"atomicsmodel/internal/atomics"
	"atomicsmodel/internal/stats"
)

// Mode selects the contention setting (mirrors the workload package).
type Mode uint8

const (
	// HighContention: all goroutines target one cache line.
	HighContention Mode = iota
	// LowContention: each goroutine has a private, padded line.
	LowContention
)

// padded is one cache-line-sized slot: the value sits alone on its line
// so low-contention runs do not false-share.
type padded struct {
	v uint64
	_ [7]uint64
}

// Config parameterizes a native run.
type Config struct {
	Threads   int
	Primitive atomics.Primitive
	Mode      Mode
	Duration  time.Duration
	// Pin calls runtime.LockOSThread in each worker so goroutines stay
	// on stable OS threads (the closest Go gets to affinity).
	Pin bool
}

// Result reports a native run.
type Result struct {
	Ops            uint64
	Attempts       uint64
	Failures       uint64
	PerThreadOps   []uint64
	Wall           time.Duration
	ThroughputMops float64
	Jain           float64
	SuccessRate    float64
}

// Run executes the configured native microbenchmark.
func Run(cfg Config) (*Result, error) {
	if cfg.Threads <= 0 {
		return nil, fmt.Errorf("native: Threads = %d", cfg.Threads)
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 100 * time.Millisecond
	}
	switch cfg.Primitive {
	case atomics.CAS, atomics.FAA, atomics.SWAP, atomics.Load, atomics.Store:
	default:
		return nil, fmt.Errorf("native: primitive %v not supported natively (TAS maps to CAS on Go)", cfg.Primitive)
	}

	shared := new(padded)
	private := make([]padded, cfg.Threads)
	var stop atomic.Bool
	perOps := make([]uint64, cfg.Threads)
	perAttempts := make([]uint64, cfg.Threads)

	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(cfg.Threads)
	for i := 0; i < cfg.Threads; i++ {
		go func(id int) {
			defer done.Done()
			if cfg.Pin {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			target := &shared.v
			if cfg.Mode == LowContention {
				target = &private[id].v
			}
			start.Wait()
			var ops, attempts uint64
			expected := atomic.LoadUint64(target)
			for !stop.Load() {
				switch cfg.Primitive {
				case atomics.FAA:
					atomic.AddUint64(target, 1)
					ops++
					attempts++
				case atomics.SWAP:
					atomic.SwapUint64(target, uint64(id))
					ops++
					attempts++
				case atomics.CAS:
					attempts++
					if atomic.CompareAndSwapUint64(target, expected, expected+1) {
						expected++
						ops++
					} else {
						expected = atomic.LoadUint64(target)
					}
				case atomics.Load:
					if atomic.LoadUint64(target) == ^uint64(0) {
						panic("unreachable; defeats dead-code elimination")
					}
					ops++
					attempts++
				case atomics.Store:
					atomic.StoreUint64(target, uint64(id))
					ops++
					attempts++
				}
			}
			perOps[id] = ops
			perAttempts[id] = attempts
		}(i)
	}

	begin := time.Now()
	start.Done()
	time.Sleep(cfg.Duration)
	stop.Store(true)
	done.Wait()
	wall := time.Since(begin)

	res := &Result{PerThreadOps: perOps, Wall: wall}
	for i := range perOps {
		res.Ops += perOps[i]
		res.Attempts += perAttempts[i]
	}
	res.Failures = res.Attempts - res.Ops
	res.ThroughputMops = float64(res.Ops) / wall.Seconds() / 1e6
	res.Jain = stats.JainIndex(perOps)
	if res.Attempts > 0 {
		res.SuccessRate = float64(res.Ops) / float64(res.Attempts)
	} else {
		res.SuccessRate = 1
	}
	return res, nil
}
