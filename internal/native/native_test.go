package native

import (
	"runtime"
	"testing"
	"time"

	"atomicsmodel/internal/atomics"
)

func shortCfg(p atomics.Primitive, threads int, mode Mode) Config {
	return Config{Threads: threads, Primitive: p, Mode: mode, Duration: 30 * time.Millisecond}
}

func TestRunFAA(t *testing.T) {
	res, err := Run(shortCfg(atomics.FAA, 2, HighContention))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops")
	}
	if res.Failures != 0 || res.SuccessRate != 1 {
		t.Fatalf("FAA should not fail: %+v", res)
	}
	if res.ThroughputMops <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunCASFailsUnderContention(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs 2 CPUs for real contention")
	}
	res, err := Run(shortCfg(atomics.CAS, 4, HighContention))
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Log("contended CAS never failed natively (possible on an idle box, but unusual)")
	}
	if res.SuccessRate > 1 {
		t.Fatalf("success rate %v", res.SuccessRate)
	}
}

func TestLowContentionScales(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skip("needs 4 CPUs")
	}
	solo, err := Run(shortCfg(atomics.FAA, 1, LowContention))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(shortCfg(atomics.FAA, 4, LowContention))
	if err != nil {
		t.Fatal(err)
	}
	if multi.ThroughputMops < 2*solo.ThroughputMops {
		t.Logf("weak scaling on this host: 1t=%.1f 4t=%.1f Mops (noisy CI is fine)",
			solo.ThroughputMops, multi.ThroughputMops)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Threads: 0, Primitive: atomics.FAA}); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Run(Config{Threads: 1, Primitive: atomics.TAS}); err == nil {
		t.Error("TAS should be rejected natively")
	}
}

func TestAllSupportedPrimitivesRun(t *testing.T) {
	for _, p := range []atomics.Primitive{atomics.CAS, atomics.FAA, atomics.SWAP, atomics.Load, atomics.Store} {
		res, err := Run(Config{Threads: 2, Primitive: p, Duration: 10 * time.Millisecond})
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Ops == 0 {
			t.Fatalf("%v: no ops", p)
		}
	}
}

func TestPerThreadAccounting(t *testing.T) {
	res, err := Run(shortCfg(atomics.FAA, 3, HighContention))
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, v := range res.PerThreadOps {
		sum += v
	}
	if sum != res.Ops {
		t.Fatalf("per-thread sum %d != ops %d", sum, res.Ops)
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Fatalf("Jain = %v", res.Jain)
	}
}

func TestPinnedRun(t *testing.T) {
	cfg := shortCfg(atomics.FAA, 2, HighContention)
	cfg.Pin = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no ops when pinned")
	}
}
