package jobs

import (
	"strings"
	"testing"
)

func TestParseSpecStrict(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown field", `{"workloads":["high-faa"],"bogus":1}`, "bogus"},
		{"trailing garbage", `{"workloads":["high-faa"]} {"again":true}`, "trailing"},
		{"nested unknown field", `{"workloadSpec":{"name":"x","nope":1}}`, "nope"},
		{"not json", `hello`, "parsing"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ParseSpec([]byte(c.body)); err == nil {
				t.Fatalf("ParseSpec(%s) = nil error, want %q", c.body, c.wantErr)
			} else if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("ParseSpec(%s) error = %v, want substring %q", c.body, err, c.wantErr)
			}
		})
	}
	if _, err := ParseSpec([]byte(`{"workloads":["high-faa"],"quick":true}`)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func mustID(t *testing.T, body string) string {
	t.Helper()
	s, err := ParseSpec([]byte(body))
	if err != nil {
		t.Fatalf("ParseSpec(%s): %v", body, err)
	}
	id, err := s.ID()
	if err != nil {
		t.Fatalf("ID(%s): %v", body, err)
	}
	return id
}

func TestJobIDCanonical(t *testing.T) {
	base := mustID(t, `{"workloads":["high-faa"],"quick":true}`)

	// Content-addressing: every spelling of the same work is one job.
	same := []struct{ name, body string }{
		{"explicit default seed", `{"workloads":["high-faa"],"quick":true,"seed":42}`},
		{"explicit default machines", `{"machines":["XeonE5","KNL"],"workloads":["high-faa"],"quick":true}`},
		{"machine name case", `{"machines":["xeone5","knl"],"workloads":["high-faa"],"quick":true}`},
		{"deadline is policy, not identity", `{"workloads":["high-faa"],"quick":true,"deadlineMS":5000}`},
	}
	for _, c := range same {
		if got := mustID(t, c.body); got != base {
			t.Errorf("%s: ID %s != base %s (must deduplicate)", c.name, got, base)
		}
	}

	// Any knob that changes the result changes the identity.
	diff := []struct{ name, body string }{
		{"seed", `{"workloads":["high-faa"],"quick":true,"seed":7}`},
		{"quick", `{"workloads":["high-faa"]}`},
		{"metrics", `{"workloads":["high-faa"],"quick":true,"metrics":true}`},
		{"check", `{"workloads":["high-faa"],"quick":true,"check":true}`},
		{"workload", `{"workloads":["low-faa"],"quick":true}`},
		{"machines", `{"machines":["KNL"],"workloads":["high-faa"],"quick":true}`},
		{"fleet", `{"workloads":["high-faa"],"quick":true,"fleet":true}`},
	}
	for _, c := range diff {
		if got := mustID(t, c.body); got == base {
			t.Errorf("%s: ID unchanged (%s); distinct work must get a distinct job", c.name, got)
		}
	}

	if id2 := mustID(t, `{"workloads":["high-faa"],"quick":true}`); id2 != base {
		t.Errorf("ID not deterministic: %s then %s", base, id2)
	}
}

func TestResolveValidation(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"no workloads", `{"quick":true}`, "at least one workload"},
		{"unknown workload", `{"workloads":["nope"]}`, "unknown workload"},
		{"unknown machine", `{"machines":["nope"],"workloads":["high-faa"]}`, "unknown machine"},
		{"knee without fleet", `{"workloads":["high-faa"],"knee":0.5}`, "fleet option"},
		{"knee out of range", `{"workloads":["high-faa"],"fleet":true,"knee":1.5}`, "knee"},
		{"negative deadline", `{"workloads":["high-faa"],"deadlineMS":-1}`, "deadlineMS"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := ParseSpec([]byte(c.body))
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			if err := s.Validate(); err == nil {
				t.Fatalf("Validate(%s) = nil, want %q", c.body, c.wantErr)
			} else if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("Validate(%s) = %v, want substring %q", c.body, err, c.wantErr)
			}
		})
	}
}

func TestResolveDefaults(t *testing.T) {
	s, err := ParseSpec([]byte(`{"workloads":["high-faa"]}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Seed != DefaultSeed {
		t.Errorf("default seed = %d, want %d", r.Seed, DefaultSeed)
	}
	if len(r.Machines) != 2 {
		t.Errorf("default machines = %d, want the paper pair", len(r.Machines))
	}

	fleet, err := ParseSpec([]byte(`{"workloads":["high-faa"],"fleet":true}`))
	if err != nil {
		t.Fatal(err)
	}
	fr, err := fleet.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Machines) <= len(r.Machines) {
		t.Errorf("fleet default machines = %d, want the whole registry (> %d)", len(fr.Machines), len(r.Machines))
	}
}

// FuzzJobSpecLoad fuzzes the submit path's parser the way a hostile or
// confused client exercises it: arbitrary bytes must produce either a
// clean error or a spec whose validation and identity derivation never
// panic, and the identity must be deterministic.
func FuzzJobSpecLoad(f *testing.F) {
	f.Add([]byte(`{"workloads":["high-faa"],"quick":true}`))
	f.Add([]byte(`{"machines":["KNL"],"workloadSpec":{"name":"w","pattern":"cas-retry"},"seed":7}`))
	f.Add([]byte(`{"fleet":true,"knee":0.8,"workloads":["high-faa","low-faa"]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`[`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(data)
		if err != nil {
			return
		}
		id1, err1 := s.ID()
		id2, err2 := s.ID()
		if (err1 == nil) != (err2 == nil) || id1 != id2 {
			t.Fatalf("ID not deterministic: (%q, %v) then (%q, %v)", id1, err1, id2, err2)
		}
		if err1 == nil && (len(id1) < 2 || id1[0] != 'j') {
			t.Fatalf("malformed job ID %q", id1)
		}
	})
}

func TestJobAppSpecs(t *testing.T) {
	// An apps-only job is valid; its identity carries the app digest.
	appOnly := mustID(t, `{"apps":["treiber"],"quick":true}`)
	if other := mustID(t, `{"apps":["ws-deque"],"quick":true}`); other == appOnly {
		t.Errorf("distinct apps share job ID %s", appOnly)
	}
	// Adding an app to a workload job changes its identity; the
	// workload-only identity itself is untouched by the apps field
	// (omitempty), so pre-apps journaled IDs stay valid.
	wlOnly := mustID(t, `{"workloads":["high-faa"],"quick":true}`)
	if both := mustID(t, `{"workloads":["high-faa"],"apps":["treiber"],"quick":true}`); both == wlOnly {
		t.Errorf("app payload did not change the job ID %s", wlOnly)
	}

	// Inline app specs resolve and validate like inline workloads.
	s, err := ParseSpec([]byte(`{"appSpec":{"structure":"counter-faa","threads":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AppSpecs) != 1 || len(r.Specs) != 0 {
		t.Fatalf("resolved %d app specs / %d workload specs, want 1/0", len(r.AppSpecs), len(r.Specs))
	}

	bad := []struct{ name, body, wantErr string }{
		{"unknown app", `{"apps":["nope"]}`, "unknown app"},
		{"fleet needs workloads", `{"apps":["treiber"],"fleet":true}`, "apps-only"},
		{"invalid inline app", `{"appSpec":{"structure":"counter-faa","threads":4,"stripes":8}}`, "stripes"},
		{"nested unknown app field", `{"appSpec":{"structure":"counter-faa","threads":4,"nope":1}}`, "nope"},
	}
	for _, c := range bad {
		t.Run(c.name, func(t *testing.T) {
			s, err := ParseSpec([]byte(c.body))
			if err == nil {
				err = s.Validate()
			}
			if err == nil {
				t.Fatalf("%s accepted, want error %q", c.body, c.wantErr)
			} else if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}
