// Package jobs turns the experiment harness into a crash-safe
// simulation job service: the library behind the atomicd daemon
// (cmd/atomicd). A job is a declarative JSON request — machines (by
// registered name or inline machine.Spec), workloads (by preset name
// or inline workload.Spec), apps (by registered name or inline
// apps.Spec, run as the A suite), and run options (quick/metrics/
// check/fleet/seed/deadline) — whose identity is a content digest
// derived from the same machine/workload/app sha256 digests that key
// the cell cache: identical requests are one job, deduplicated both
// in flight and across daemon restarts.
//
// Robustness is the package's whole job (DESIGN.md, "Simulation as a
// service"): submissions are journaled write-ahead (jobs.jsonl, via
// the internal/runlog JSONL conventions) before they are admitted, so
// a SIGKILL'd daemon recovers queued and in-flight jobs on restart and
// replays their completed cells from the shared cell cache; execution
// runs on a bounded worker pool with per-job deadlines
// (harness.Options.Context), capped exponential-backoff-with-jitter
// retries, and job-level panic isolation; admission control sheds load
// (bounded queue depth and per-client in-flight caps → HTTP 429)
// instead of growing without bound; and SIGTERM drains gracefully —
// stop admitting, finish what was accepted, flush, exit.
package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"atomicsmodel/internal/apps"
	"atomicsmodel/internal/machine"
	"atomicsmodel/internal/runlog"
	"atomicsmodel/internal/workload"
)

// Spec is one job request: the JSON body of POST /jobs. It is parsed
// strictly (unknown fields and trailing garbage are errors) like the
// machine and workload specs it embeds.
type Spec struct {
	// Machines lists registered machine names (aliases allowed) to run
	// on. Empty means the paper pair for workload jobs and every
	// registered machine for fleet jobs.
	Machines []string `json:"machines,omitempty"`
	// MachineSpec is an inline machine definition, run alongside any
	// named Machines.
	MachineSpec *machine.Spec `json:"machineSpec,omitempty"`

	// Workloads lists registered workload preset names. At least one
	// workload or app (named or inline) is required.
	Workloads []string `json:"workloads,omitempty"`
	// WorkloadSpec is an inline workload definition, run alongside any
	// named Workloads.
	WorkloadSpec *workload.Spec `json:"workloadSpec,omitempty"`

	// Apps lists registered app-spec names (concurrent-object
	// benchmarks, run as the A suite).
	Apps []string `json:"apps,omitempty"`
	// AppSpec is an inline app definition, run alongside any named Apps.
	AppSpec *apps.Spec `json:"appSpec,omitempty"`

	// Fleet runs the workloads as a fleet sweep (bottleneck verdicts
	// across machines, see BOTTLENECKS.md) instead of the plain W
	// suite. Knee optionally overrides the fleet knee-detection
	// utilization threshold (0 means the default).
	Fleet bool    `json:"fleet,omitempty"`
	Knee  float64 `json:"knee,omitempty"`

	// Quick trims sweeps to CI-speed runs; Metrics appends per-cell
	// breakdown tables; Check audits coherence/engine invariants.
	// Each joins the cell cache key exactly as the CLI flags do.
	Quick   bool `json:"quick,omitempty"`
	Metrics bool `json:"metrics,omitempty"`
	Check   bool `json:"check,omitempty"`

	// Seed is the base seed; zero means the CLI default (42).
	Seed uint64 `json:"seed,omitempty"`

	// DeadlineMS optionally overrides the server's per-job deadline in
	// milliseconds. Execution policy, not identity: it never joins the
	// job digest, because it cannot change the result.
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
}

// DefaultSeed matches the CLIs' -seed default, so a job that omits the
// seed reuses their cache cells.
const DefaultSeed = 42

// maxJobMachines bounds the machine list; a longer one is a typo or an
// attack, not a plan.
const maxJobMachines = 64

// maxJobWorkloads bounds the workload list.
const maxJobWorkloads = 64

// maxJobApps bounds the app list.
const maxJobApps = 64

// ParseSpec decodes a job request strictly: unknown fields (at any
// nesting level, including inline machine and workload specs) and
// trailing garbage are errors, so a typo'd knob can never be silently
// ignored.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("jobs: parsing job spec: %w", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err != io.EOF {
		return nil, fmt.Errorf("jobs: trailing data after the job spec object")
	}
	return &s, nil
}

// Resolved is a job spec with every name resolved against the live
// registries: the concrete machines and pinned workload specs the
// harness will run, plus the effective seed and knee.
type Resolved struct {
	Machines []*machine.Machine
	Specs    []*workload.Spec
	AppSpecs []*apps.Spec
	Seed     uint64
	Knee     float64
}

// Resolve validates the spec and resolves names to machines and
// workload specs. Resolution is deterministic: machines and workloads
// keep their request order, and the fleet default (every registered
// machine) is expanded here, at submit time, so the job's identity
// pins the machine set even if the registry later grows.
func (s *Spec) Resolve() (*Resolved, error) {
	if len(s.Machines) > maxJobMachines {
		return nil, fmt.Errorf("jobs: %d machines (max %d)", len(s.Machines), maxJobMachines)
	}
	if len(s.Workloads) > maxJobWorkloads {
		return nil, fmt.Errorf("jobs: %d workloads (max %d)", len(s.Workloads), maxJobWorkloads)
	}
	if len(s.Apps) > maxJobApps {
		return nil, fmt.Errorf("jobs: %d apps (max %d)", len(s.Apps), maxJobApps)
	}
	hasWorkloads := len(s.Workloads) > 0 || s.WorkloadSpec != nil
	hasApps := len(s.Apps) > 0 || s.AppSpec != nil
	if !hasWorkloads && !hasApps {
		return nil, fmt.Errorf("jobs: a job needs at least one workload (names in %q or an inline workloadSpec) or app (names in %q or an inline appSpec); registered workloads: %s",
			"workloads", "apps", strings.Join(workload.SpecNames(), ", "))
	}
	if s.Fleet && !hasWorkloads {
		return nil, fmt.Errorf("jobs: fleet sweeps run workloads; an apps-only job cannot set fleet=true")
	}
	if s.Knee != 0 && !s.Fleet {
		return nil, fmt.Errorf("jobs: knee is a fleet option; set fleet=true or drop it")
	}
	if s.Knee < 0 || s.Knee > 1 {
		return nil, fmt.Errorf("jobs: knee %g (want a utilization threshold in (0,1])", s.Knee)
	}
	if s.DeadlineMS < 0 {
		return nil, fmt.Errorf("jobs: deadlineMS %d (want >= 0)", s.DeadlineMS)
	}

	r := &Resolved{Seed: s.Seed, Knee: s.Knee}
	if r.Seed == 0 {
		r.Seed = DefaultSeed
	}

	for _, name := range s.Machines {
		m, err := machine.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		r.Machines = append(r.Machines, m)
	}
	if s.MachineSpec != nil {
		m, err := s.MachineSpec.Build()
		if err != nil {
			return nil, fmt.Errorf("jobs: inline machine spec: %w", err)
		}
		r.Machines = append(r.Machines, m)
	}
	if len(r.Machines) == 0 {
		if s.Fleet {
			for _, name := range machine.Names() {
				m, err := machine.ByName(name)
				if err != nil {
					return nil, fmt.Errorf("jobs: %w", err)
				}
				r.Machines = append(r.Machines, m)
			}
		} else {
			r.Machines = machine.All()
		}
	}

	for _, name := range s.Workloads {
		w, err := workload.SpecByName(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		r.Specs = append(r.Specs, w)
	}
	if s.WorkloadSpec != nil {
		if err := s.WorkloadSpec.Validate(); err != nil {
			return nil, fmt.Errorf("jobs: inline workload spec: %w", err)
		}
		r.Specs = append(r.Specs, s.WorkloadSpec)
	}

	for _, name := range s.Apps {
		a, err := apps.SpecByName(strings.TrimSpace(name))
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		r.AppSpecs = append(r.AppSpecs, a)
	}
	if s.AppSpec != nil {
		if err := s.AppSpec.Validate(); err != nil {
			return nil, fmt.Errorf("jobs: inline app spec: %w", err)
		}
		r.AppSpecs = append(r.AppSpecs, s.AppSpec)
	}
	return r, nil
}

// Validate checks the spec without keeping the resolution.
func (s *Spec) Validate() error {
	_, err := s.Resolve()
	return err
}

// jobIdentity is the canonical content the job ID hashes: machines by
// content key (Name@digest — machine.Key), workloads by spec digest,
// and every option that can change the result. Execution policy
// (DeadlineMS) is excluded: two requests that must produce the same
// bytes are the same job.
type jobIdentity struct {
	Machines  []string `json:"machines"`
	Workloads []string `json:"workloads"`
	// Apps is omitempty so workload-only job IDs predate the field
	// unchanged: adding the apps layer must not invalidate every
	// journaled job identity.
	Apps  []string `json:"apps,omitempty"`
	Fleet bool     `json:"fleet,omitempty"`
	Knee      float64  `json:"knee,omitempty"`
	Quick     bool     `json:"quick,omitempty"`
	Metrics   bool     `json:"metrics,omitempty"`
	Check     bool     `json:"check,omitempty"`
	Seed      uint64   `json:"seed"`
}

// ID returns the job's content-addressed identity: "j" plus the short
// sha256 of the canonical resolved form. Same inputs — through any
// spelling (machine aliases, implicit defaults, inline specs equal to
// presets) — same ID; any knob that changes the result changes it.
func (s *Spec) ID() (string, error) {
	r, err := s.Resolve()
	if err != nil {
		return "", err
	}
	ident := jobIdentity{
		Fleet: s.Fleet, Knee: s.Knee,
		Quick: s.Quick, Metrics: s.Metrics, Check: s.Check,
		Seed: r.Seed,
	}
	for _, m := range r.Machines {
		ident.Machines = append(ident.Machines, m.Key())
	}
	for _, w := range r.Specs {
		d, err := w.Digest()
		if err != nil {
			return "", fmt.Errorf("jobs: workload digest: %w", err)
		}
		ident.Workloads = append(ident.Workloads, "wl@"+d)
	}
	for _, a := range r.AppSpecs {
		d, err := a.Digest()
		if err != nil {
			return "", fmt.Errorf("jobs: app digest: %w", err)
		}
		ident.Apps = append(ident.Apps, "app@"+d)
	}
	b, err := json.Marshal(ident)
	if err != nil {
		return "", err
	}
	return "j" + runlog.Digest(b), nil
}
