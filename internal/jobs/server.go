package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"os"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/harness"
	"atomicsmodel/internal/runlog"
)

// State is a job's lifecycle state. The state machine is
//
//	queued → running → done
//	                 ↘ failed → (resubmit) → queued
//
// and nothing else: done is immutable (content-addressed results never
// change), failed jobs may be resubmitted, and a daemon crash rewinds
// running jobs to queued on the next start (the journal has their
// submit record and no terminal record).
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// Config tunes a Server. The zero value of every field gets a sane
// default from New.
type Config struct {
	// Dir is the daemon's run directory: the job journal (jobs.jsonl)
	// and the shared cell cache (cells.jsonl) live here. Required.
	Dir string
	// Workers is the job worker pool size (default 2). Each worker runs
	// one job at a time; cells inside a job parallelize up to CellPar.
	Workers int
	// QueueDepth bounds the number of admitted-but-unstarted jobs
	// (default 16). A full queue sheds new submissions with HTTP 429
	// rather than growing without bound.
	QueueDepth int
	// PerClient bounds one client's queued+running jobs (default 4), so
	// a single chatty client cannot monopolize the queue.
	PerClient int
	// JobDeadline bounds each job's wall-clock execution (default 10m);
	// a job may lower (never raise) it per request via DeadlineMS.
	JobDeadline time.Duration
	// JobRetries is how many times a failed job execution is retried
	// with capped exponential backoff and jitter before the job fails
	// terminally (default 1). Deadline-exceeded jobs never retry.
	JobRetries int
	// CellPar caps concurrent cells inside one job (default GOMAXPROCS,
	// via the harness).
	CellPar int
	// CellTimeout/CellRetries forward to the harness cell watchdog and
	// cell retry policy (defaults: off), the layer below job retries.
	CellTimeout time.Duration
	CellRetries int
	// Faults arms the daemon fault hooks (crash-after-N-cells) and, when
	// simulation-layer faults are present, forwards them into cells —
	// which re-namespaces their cache keys exactly like the CLIs.
	Faults *faults.Plan
	// Log receives operational messages (default: discard).
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.PerClient <= 0 {
		c.PerClient = 4
	}
	if c.JobDeadline <= 0 {
		c.JobDeadline = 10 * time.Minute
	}
	if c.JobRetries < 0 {
		c.JobRetries = 0
	} else if c.JobRetries == 0 {
		c.JobRetries = 1
	}
	if c.Log == nil {
		c.Log = log.New(io.Discard, "", 0)
	}
	return c
}

// Status is a point-in-time snapshot of a job, also the JSON shape the
// HTTP API serves.
type Status struct {
	ID           string `json:"id"`
	State        State  `json:"state"`
	CellsDone    int    `json:"cellsDone"`
	CellsTotal   int    `json:"cellsTotal"`
	Attempt      int    `json:"attempt,omitempty"`
	ResultDigest string `json:"resultDigest,omitempty"`
	Error        string `json:"error,omitempty"`
}

// Stats are cumulative daemon counters, served by GET /healthz. The
// Cache* fields snapshot the shared cell cache's Get traffic
// (runlog.CacheStats): hits and misses across all jobs, and how many
// hits replayed cells persisted by an earlier daemon incarnation —
// the live view of crash-recovery effectiveness.
type Stats struct {
	Jobs          int    `json:"jobs"`
	Executed      uint64 `json:"executed"`
	Deduped       uint64 `json:"deduped"`
	Shed          uint64 `json:"shed"`
	CellsDone     uint64 `json:"cellsDone"`
	Recovered     int    `json:"recovered"`
	CacheHits     uint64 `json:"cacheHits"`
	CacheMisses   uint64 `json:"cacheMisses"`
	CacheReplayed uint64 `json:"cacheReplayed"`
}

// AdmissionError is a load-shedding rejection: the queue is full, the
// client is over its in-flight cap, or the daemon is draining. The
// HTTP layer maps it to 429/503 with a Retry-After.
type AdmissionError struct {
	// Draining distinguishes "shutting down" (503) from "overloaded"
	// (429).
	Draining bool
	// RetryAfter is the suggested client backoff.
	RetryAfter time.Duration
	msg        string
}

func (e *AdmissionError) Error() string { return e.msg }

// Server is the simulation job server: a bounded worker pool over the
// experiment harness, fronted by admission control and backed by the
// write-ahead job journal and the shared cell cache.
type Server struct {
	cfg     Config
	cache   *runlog.Cache
	journal *Journal

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string       // submission order, for deterministic listings
	inflight map[string]int // per-client queued+running jobs
	queue    chan *job
	draining bool

	workerWG  sync.WaitGroup
	jobWG     sync.WaitGroup
	cellsDone atomic.Uint64
	executed  atomic.Uint64
	deduped   atomic.Uint64
	shed      atomic.Uint64
	recovered int

	// exit is the daemon crash hook's exit function; tests may stub it.
	exit func(int)
}

// job is the server's internal job record.
type job struct {
	id     string
	spec   *Spec
	raw    json.RawMessage
	client string

	mu           sync.Mutex
	state        State
	errMsg       string
	attempt      int
	cellsDone    int
	cellsTotal   int
	resultDigest string
	done         chan struct{}
	subs         map[chan Status]struct{}
}

func newJob(id string, spec *Spec, raw json.RawMessage, client string) *job {
	return &job{
		id: id, spec: spec, raw: raw, client: client,
		state: StateQueued,
		done:  make(chan struct{}),
		subs:  map[chan Status]struct{}{},
	}
}

// status snapshots the job under its lock.
func (j *job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *job) statusLocked() Status {
	return Status{
		ID: j.id, State: j.state,
		CellsDone: j.cellsDone, CellsTotal: j.cellsTotal,
		Attempt: j.attempt, ResultDigest: j.resultDigest, Error: j.errMsg,
	}
}

// notifyLocked fans the current snapshot out to stream subscribers.
// Channels are buffered and stale progress is droppable, so a slow
// subscriber never blocks the simulation.
func (j *job) notifyLocked() {
	st := j.statusLocked()
	for ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

func (j *job) setState(s State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = s
	j.notifyLocked()
}

func (j *job) setAttempt(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempt = n
	j.notifyLocked()
}

func (j *job) progress(done, total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone, j.cellsTotal = done, total
	j.notifyLocked()
}

// finish moves the job to a terminal state and wakes every waiter.
func (j *job) finish(s State, digest, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state, j.resultDigest, j.errMsg = s, digest, errMsg
	j.notifyLocked()
	close(j.done)
}

// rearm resets a failed job for resubmission.
func (j *job) rearm(client string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.client = client
	j.state, j.errMsg, j.resultDigest = StateQueued, "", ""
	j.attempt, j.cellsDone, j.cellsTotal = 0, 0, 0
	j.done = make(chan struct{})
	j.notifyLocked()
}

// subscribe registers a stream listener and returns its channel plus
// the current snapshot; unsubscribe with the returned func.
func (j *job) subscribe() (chan Status, Status, func()) {
	ch := make(chan Status, 16)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	st := j.statusLocked()
	j.mu.Unlock()
	return ch, st, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// doneCh returns the channel closed at the job's current incarnation's
// terminal transition.
func (j *job) doneCh() chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// New opens (or recovers) the run directory and starts the worker
// pool. Opening takes the directory's cell-cache writer lock, so two
// daemons can never share a run directory; the loser gets the "locked
// by pid N" error. Jobs journaled as pending — queued or in flight
// when the previous process died — are re-enqueued before the first
// request is served, and a done job whose cached result was lost or
// quarantined is re-enqueued too (quarantine-and-recompute at the job
// level).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("jobs: Config.Dir is required")
	}
	cache, err := runlog.OpenCache(cfg.Dir)
	if err != nil {
		return nil, err
	}
	journal, recoveredJobs, quarantined, err := OpenJournal(cfg.Dir)
	if err != nil {
		cache.Close()
		return nil, err
	}
	for _, q := range cache.Quarantined() {
		cfg.Log.Printf("quarantined cells.jsonl line %d: %s", q.Line, q.Reason)
	}
	for _, q := range quarantined {
		cfg.Log.Printf("quarantined jobs.jsonl line %d: %s", q.Line, q.Reason)
	}

	var pending []*job
	s := &Server{
		cfg: cfg, cache: cache, journal: journal,
		jobs:     map[string]*job{},
		inflight: map[string]int{},
		exit:     os.Exit,
	}
	for _, r := range recoveredJobs {
		j := newJob(r.ID, r.Spec, r.Raw, "")
		switch r.State {
		case StateDone:
			// Trust the journal only as far as the cache backs it up:
			// the result must still be present and uncorrupted (the
			// cache loader already quarantined bad lines). A missing
			// result means recompute, not a 500 at serve time.
			if _, _, ok := cache.Get(resultKey(r.ID)); ok {
				j.state, j.resultDigest = StateDone, r.ResultDigest
				close(j.done)
			} else {
				cfg.Log.Printf("job %s journaled done but its result is gone from the cache; recomputing", r.ID)
				pending = append(pending, j)
			}
		case StateFailed:
			j.state, j.errMsg = StateFailed, r.Error
			close(j.done)
		default:
			pending = append(pending, j)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
	}
	s.recovered = len(pending)

	// The queue must absorb every recovered job plus a full admission
	// window; recovery must never shed journaled work.
	depth := cfg.QueueDepth
	if depth < len(pending) {
		depth = len(pending)
	}
	s.queue = make(chan *job, depth)
	for _, j := range pending {
		s.jobWG.Add(1)
		s.queue <- j
		cfg.Log.Printf("recovered job %s (re-queued)", j.id)
	}

	for w := 0; w < cfg.Workers; w++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s, nil
}

// Recovered returns how many journaled jobs were re-enqueued at open.
func (s *Server) Recovered() int { return s.recovered }

// Stats snapshots the daemon counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	cs := s.cache.Stats()
	return Stats{
		Jobs:          n,
		Executed:      s.executed.Load(),
		Deduped:       s.deduped.Load(),
		Shed:          s.shed.Load(),
		CellsDone:     s.cellsDone.Load(),
		Recovered:     s.recovered,
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheReplayed: cs.Replayed,
	}
}

// resultKey is the shared-cache key holding a job's rendered result.
// Job results live in the same content-addressed store as cells, so
// they inherit its durability, digest verification, and quarantine.
func resultKey(id string) string { return "job/" + id }

// jobResult is the cached result payload.
type jobResult struct {
	// Text is the job's rendered tables, byte-identical across any
	// interleaving of crashes, restarts, and cache replays.
	Text string `json:"text"`
}

// Submit admits one job request for client. It returns the job (new,
// deduplicated, or resubmitted) and true when the caller should treat
// it as newly admitted (HTTP 202 vs 200). Admission can fail with
// *AdmissionError (shed load / draining) or a spec error.
func (s *Server) Submit(client string, body []byte) (*job, bool, error) {
	spec, err := ParseSpec(body)
	if err != nil {
		return nil, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return nil, false, err
	}
	// Canonical journaled form: the parsed spec re-marshaled, so the
	// journal never stores request noise (whitespace, field order).
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, false, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.shed.Add(1)
		return nil, false, &AdmissionError{Draining: true, RetryAfter: 5 * time.Second,
			msg: "daemon is draining; submit to the next instance"}
	}
	if j, ok := s.jobs[id]; ok {
		st := j.status()
		if st.State != StateFailed {
			// Deduplicated: same content-addressed job, whether done
			// (serve the cached result) or still in flight (share it).
			s.deduped.Add(1)
			return j, false, nil
		}
		// Resubmission of a failed job: re-run it, subject to the same
		// admission control as a fresh submit.
		if err := s.admitLocked(client); err != nil {
			return nil, false, err
		}
		if err := s.journal.Submit(id, j.raw); err != nil {
			s.unadmitLocked(client)
			return nil, false, fmt.Errorf("jobs: journaling resubmit: %w", err)
		}
		j.rearm(client)
		s.jobWG.Add(1)
		s.queue <- j
		return j, true, nil
	}

	if err := s.admitLocked(client); err != nil {
		return nil, false, err
	}
	j := newJob(id, spec, raw, client)
	// Write-ahead: the journal record lands before the job is visible
	// anywhere — if the daemon dies right here, the next start re-runs
	// the job; it can never be half-admitted.
	if err := s.journal.Submit(id, raw); err != nil {
		s.unadmitLocked(client)
		return nil, false, fmt.Errorf("jobs: journaling submit: %w", err)
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.jobWG.Add(1)
	s.queue <- j
	return j, true, nil
}

// admitLocked enforces load shedding; callers hold s.mu. The queue
// reservation is sound because every sender holds s.mu: len(queue) can
// only shrink concurrently (workers receive), never grow.
func (s *Server) admitLocked(client string) error {
	if s.inflight[client] >= s.cfg.PerClient {
		s.shed.Add(1)
		return &AdmissionError{RetryAfter: 2 * time.Second,
			msg: fmt.Sprintf("client has %d jobs in flight (cap %d)", s.inflight[client], s.cfg.PerClient)}
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.shed.Add(1)
		return &AdmissionError{RetryAfter: 2 * time.Second,
			msg: fmt.Sprintf("job queue is full (%d queued)", len(s.queue))}
	}
	s.inflight[client]++
	return nil
}

func (s *Server) unadmitLocked(client string) {
	if s.inflight[client] > 0 {
		s.inflight[client]--
	}
}

// Get returns the job with the given ID.
func (s *Server) Get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// Result returns a done job's rendered tables from the shared cache.
func (s *Server) Result(id string) ([]byte, error) {
	raw, _, ok := s.cache.Get(resultKey(id))
	if !ok {
		return nil, fmt.Errorf("jobs: result for %s is not in the cache (corrupted and quarantined?); resubmit to recompute", id)
	}
	var r jobResult
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("jobs: decoding cached result for %s: %w", id, err)
	}
	return []byte(r.Text), nil
}

// Draining reports whether the server has stopped admitting jobs.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// retryBackoff computes the sleep before retry attempt k (1-based):
// capped exponential backoff with full jitter, so a burst of failed
// jobs does not retry in lockstep. Wall-clock policy only — it can
// never affect results.
func retryBackoff(attempt int) time.Duration {
	const (
		base = 100 * time.Millisecond
		cap  = 5 * time.Second
	)
	d := base << uint(attempt-1)
	if d > cap || d <= 0 {
		d = cap
	}
	return time.Duration(rand.Int63n(int64(d)) + int64(d)/2)
}

// runJob executes one job under the full robustness stack: per-job
// deadline, capped backoff-with-jitter retries, and panic isolation.
// Terminal states are journaled before they are announced.
func (s *Server) runJob(j *job) {
	defer s.jobWG.Done()
	defer func() {
		s.mu.Lock()
		s.unadmitLocked(j.client)
		s.mu.Unlock()
	}()

	j.setState(StateRunning)
	deadline := s.cfg.JobDeadline
	if ms := j.spec.DeadlineMS; ms > 0 && time.Duration(ms)*time.Millisecond < deadline {
		deadline = time.Duration(ms) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()

	var lastErr error
	for attempt := 1; attempt <= 1+s.cfg.JobRetries; attempt++ {
		if attempt > 1 {
			time.Sleep(retryBackoff(attempt - 1))
			if ctx.Err() != nil {
				break
			}
			s.cfg.Log.Printf("job %s: retrying (attempt %d): %v", j.id, attempt, lastErr)
		}
		j.setAttempt(attempt)
		text, err := s.executeOnce(ctx, j)
		if err == nil {
			digest, perr := s.storeResult(j.id, text)
			if perr != nil {
				lastErr = perr
				continue
			}
			if jerr := s.journal.Done(j.id, digest); jerr != nil {
				s.cfg.Log.Printf("job %s: journaling done: %v", j.id, jerr)
			}
			j.finish(StateDone, digest, "")
			s.cfg.Log.Printf("job %s: done (result %s)", j.id, digest)
			return
		}
		lastErr = err
		if ctx.Err() != nil {
			// The deadline ate the attempt; retrying would just burn
			// the backoff against a dead clock.
			break
		}
	}

	msg := "job failed: " + lastErr.Error()
	switch {
	case errors.Is(lastErr, context.DeadlineExceeded):
		msg = fmt.Sprintf("job deadline exceeded (%v)", deadline)
	case errors.Is(lastErr, context.Canceled):
		msg = "job canceled"
	}
	if jerr := s.journal.Failed(j.id, msg); jerr != nil {
		s.cfg.Log.Printf("job %s: journaling failure: %v", j.id, jerr)
	}
	j.finish(StateFailed, "", msg)
	s.cfg.Log.Printf("job %s: failed: %s", j.id, msg)
}

// executeOnce runs the job's experiment once and renders its tables.
// Panics — whether from a cell (already converted by the harness) or
// from table assembly — are isolated to this job: the daemon survives
// a poisoned request.
func (s *Server) executeOnce(ctx context.Context, j *job) (text []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
		}
	}()
	res, err := j.spec.Resolve()
	if err != nil {
		return nil, err
	}
	s.executed.Add(1)

	o := harness.Options{
		Machines:    res.Machines,
		Quick:       j.spec.Quick,
		Seed:        res.Seed,
		Par:         s.cfg.CellPar,
		Cache:       s.cache,
		Check:       j.spec.Check,
		Context:     ctx,
		CellTimeout: s.cfg.CellTimeout,
		CellRetries: s.cfg.CellRetries,
		Faults:      s.cfg.Faults.CellLayer(),
		Progress: func(done, total int) {
			j.progress(done, total)
			n := s.cellsDone.Add(1)
			if s.cfg.Faults.ShouldCrash(n) {
				// The armed crash hook: SIGKILL semantics at a
				// deterministic point. No drain, no journal terminal
				// record, no cache flush beyond the per-Put flushes
				// that already happened — exactly what recovery must
				// survive.
				s.cfg.Log.Printf("faults: daemon crash hook firing after %d cells", n)
				s.exit(3)
			}
		},
	}
	if j.spec.Metrics {
		o.Metrics = &harness.MetricsCollector{}
	}

	// A job may carry workloads (the W suite or a fleet sweep), app
	// specs (the A suite), or both; both suites share the job's cell
	// cache and progress stream.
	var exps []*harness.Experiment
	if j.spec.Fleet {
		exps = append(exps, harness.FleetExperiment(res.Specs, res.Knee))
	} else if len(res.Specs) > 0 {
		exps = append(exps, harness.WorkloadExperiment(res.Specs))
	}
	if len(res.AppSpecs) > 0 {
		exps = append(exps, harness.AppExperiment(res.AppSpecs))
	}
	var tables []*harness.Table
	for _, exp := range exps {
		ts, err := harness.RunExperiment(exp, o)
		if err != nil {
			return nil, err
		}
		tables = append(tables, ts...)
	}

	var buf bytes.Buffer
	for _, t := range tables {
		if err := t.Render(&buf); err != nil {
			return nil, err
		}
		buf.WriteByte('\n')
	}
	if o.Metrics != nil {
		for _, t := range o.Metrics.Tables() {
			if err := t.Render(&buf); err != nil {
				return nil, err
			}
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes(), nil
}

// storeResult writes the rendered result into the shared cache, where
// it is content-addressed, digest-verified on every load, and
// quarantined instead of trusted if it ever rots.
func (s *Server) storeResult(id string, text []byte) (string, error) {
	raw, err := json.Marshal(jobResult{Text: string(text)})
	if err != nil {
		return "", err
	}
	return s.cache.Put(resultKey(id), raw)
}

// Drain performs the graceful shutdown: stop admitting, let every
// accepted job finish (each is journaled, so even a drain cut short by
// ctx loses nothing — unfinished jobs recover on the next start), then
// stop the workers and flush and close the journal and cache. Returns
// ctx.Err() when the deadline cut the drain short.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if alreadyDraining {
		return fmt.Errorf("jobs: already draining")
	}

	finished := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(finished)
	}()
	var drainErr error
	select {
	case <-finished:
		// All accepted jobs reached a terminal state: the journal has
		// no pending entries left.
		close(s.queue)
		s.workerWG.Wait()
	case <-ctx.Done():
		// Cut short: in-flight jobs stay journaled as pending and will
		// recover on the next start. Workers are abandoned (the
		// process is exiting).
		drainErr = ctx.Err()
	}
	if err := s.cache.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	if err := s.journal.Close(); err != nil && drainErr == nil {
		drainErr = err
	}
	return drainErr
}
