package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"atomicsmodel/internal/faults"
)

// quickSpec is the cheapest real job: one workload, one machine,
// trimmed sweeps. Tests that execute jobs use it to keep the package
// under a few seconds.
const quickSpec = `{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true}`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func drain(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

func submit(t *testing.T, ts *httptest.Server, body string) (Status, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatalf("decoding submit response %q: %v", b, err)
		}
	}
	return st, resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "?wait=60s")
	if err != nil {
		t.Fatalf("GET /jobs/%s: %v", id, err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if !st.State.Terminal() {
		t.Fatalf("job %s still %s after wait", id, st.State)
	}
	return st
}

func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result = %d: %s", resp.StatusCode, b)
	}
	return b
}

func TestServerSubmitRunResult(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	st, code := submit(t, ts, quickSpec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", code)
	}
	done := waitDone(t, ts, st.ID)
	if done.State != StateDone {
		t.Fatalf("job = %+v, want done", done)
	}
	if done.CellsDone == 0 || done.CellsDone != done.CellsTotal {
		t.Errorf("cells %d/%d, want all done", done.CellsDone, done.CellsTotal)
	}
	text := getResult(t, ts, st.ID)
	if !bytes.Contains(text, []byte("high-faa")) || !bytes.Contains(text, []byte("threads")) {
		t.Errorf("result does not look like a rendered table:\n%s", text)
	}

	// Same content → same job: the resubmit deduplicates (200, same
	// ID) and serves the identical cached result without re-running.
	st2, code2 := submit(t, ts, quickSpec)
	if code2 != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("dup submit = (%d, %s), want (200, %s)", code2, st2.ID, st.ID)
	}
	if got := s.Stats(); got.Deduped == 0 || got.Executed != 1 {
		t.Errorf("stats = %+v, want 1 execution and a dedup hit", got)
	}
	if text2 := getResult(t, ts, st.ID); !bytes.Equal(text, text2) {
		t.Errorf("deduplicated result differs from the original")
	}
}

func TestServerAdmissionControl(t *testing.T) {
	// Pure admission-logic test: no workers involved, so it is exactly
	// deterministic. admitLocked sees a full queue and a capped client.
	s := &Server{
		cfg:      Config{QueueDepth: 2, PerClient: 1}.withDefaults(),
		inflight: map[string]int{},
		queue:    make(chan *job, 2),
	}
	if err := s.admitLocked("alice"); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	err := s.admitLocked("alice")
	var adm *AdmissionError
	if !asAdmission(err, &adm) || !strings.Contains(err.Error(), "in flight") {
		t.Fatalf("over-cap admit = %v, want per-client AdmissionError", err)
	}
	if adm.RetryAfter <= 0 {
		t.Errorf("AdmissionError.RetryAfter = %v, want > 0", adm.RetryAfter)
	}

	s.queue <- &job{}
	s.queue <- &job{}
	if err := s.admitLocked("bob"); !asAdmission(err, &adm) || !strings.Contains(err.Error(), "queue is full") {
		t.Fatalf("full-queue admit = %v, want queue-full AdmissionError", err)
	}
	if got := s.shed.Load(); got != 2 {
		t.Errorf("shed counter = %d, want 2", got)
	}

	s.unadmitLocked("alice")
	if s.inflight["alice"] != 0 {
		t.Errorf("inflight after unadmit = %d, want 0", s.inflight["alice"])
	}
}

func asAdmission(err error, target **AdmissionError) bool {
	a, ok := err.(*AdmissionError)
	if ok {
		*target = a
	}
	return ok
}

func TestServerShedsUnderLoad(t *testing.T) {
	// End-to-end overload: one worker pinned by a slow job (every cell
	// sleeps), a one-deep queue, and a burst of distinct submits. The
	// burst must be shed with 429 + Retry-After, not queued without
	// bound, and the daemon must stay responsive throughout.
	plan, err := faults.Parse("sleep=300ms@0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, PerClient: 100, Faults: plan, JobRetries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	if _, code := submit(t, ts, quickSpec); code != http.StatusAccepted {
		t.Fatalf("job A = %d, want 202", code)
	}
	// Distinct specs (different seeds) → distinct jobs. One fills the
	// queue; with the worker busy, at least one later submit must shed.
	var shed int
	for seed := 2; seed < 8; seed++ {
		body := fmt.Sprintf(`{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true,"seed":%d}`, seed)
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
		}
		resp.Body.Close()
	}
	if shed == 0 {
		t.Fatal("no submit shed despite a pinned worker and a full queue")
	}
	// Shed load is not an outage: health stays served.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during overload: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestServerDeadlineThenResubmit(t *testing.T) {
	// A 1ms deadline kills the job (deadline errors never retry); the
	// job fails terminally. Resubmitting the same content without the
	// deadline re-arms the same job ID and succeeds — the failed →
	// queued edge of the state machine. Cell 0 sleeps past the deadline
	// and cells run one at a time, so the remaining cells always see
	// the expired context at claim time.
	plan, err := faults.Parse("sleep=50ms@0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{CellPar: 1, Faults: plan})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	st, code := submit(t, ts, `{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true,"deadlineMS":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	failed := waitDone(t, ts, st.ID)
	if failed.State != StateFailed || !strings.Contains(failed.Error, "deadline") {
		t.Fatalf("job = %+v, want a deadline failure", failed)
	}

	st2, code2 := submit(t, ts, quickSpec)
	if st2.ID != st.ID {
		t.Fatalf("resubmit got job %s, want the same content-addressed %s", st2.ID, st.ID)
	}
	if code2 != http.StatusAccepted {
		t.Fatalf("resubmit of a failed job = %d, want 202 (re-admitted)", code2)
	}
	if done := waitDone(t, ts, st.ID); done.State != StateDone {
		t.Fatalf("resubmitted job = %+v, want done", done)
	}
}

func TestServerPanicIsolation(t *testing.T) {
	// A poisoned request (cells panic deterministically) fails its own
	// job; the daemon survives and runs the next job normally.
	plan, err := faults.Parse("panic=1@0")
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Faults: plan, JobRetries: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	st, _ := submit(t, ts, quickSpec)
	failed := waitDone(t, ts, st.ID)
	if failed.State != StateFailed {
		t.Fatalf("poisoned job = %+v, want failed", failed)
	}
	if !strings.Contains(failed.Error, "panic") {
		t.Errorf("failure %q does not name the panic", failed.Error)
	}
	// Daemon is still alive and serving.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after a poisoned job: %v %v", resp, err)
	}
	resp.Body.Close()
}

func TestServerDrainRejectsAndReadyzFlips(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	drain(t, s)
	if !s.Draining() {
		t.Fatal("Draining() = false after Drain")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
	_, code := submit(t, ts, quickSpec)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
}

func TestServerRecoversPendingJob(t *testing.T) {
	// A job journaled as submitted but never finished — the daemon died
	// with it queued or running — must re-run on the next start and
	// complete without a client resubmitting it.
	dir := t.TempDir()
	spec, err := ParseSpec([]byte(quickSpec))
	if err != nil {
		t.Fatal(err)
	}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(spec)
	jr, _, _ := openForTest(t, dir)
	if err := jr.Submit(id, raw); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	s := newTestServer(t, Config{Dir: dir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)
	if s.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1", s.Recovered())
	}
	if done := waitDone(t, ts, id); done.State != StateDone {
		t.Fatalf("recovered job = %+v, want done", done)
	}
	if out, err := ValidateJournal(dir); err != nil || !strings.Contains(out, "1 done, 0 failed, 0 pending") {
		t.Fatalf("journal after recovery: %q, %v", out, err)
	}
}

func TestServerQuarantineAndRecompute(t *testing.T) {
	// Job-level quarantine-and-recompute: run a job to done, drain,
	// then rot its cached result on disk. The restarted daemon finds
	// the done record but no trustworthy result, re-queues the job, and
	// recomputes a byte-identical answer (the cells replay clean from
	// the same cache file).
	dir := t.TempDir()
	s := newTestServer(t, Config{Dir: dir})
	ts := httptest.NewServer(s.Handler())
	st, _ := submit(t, ts, quickSpec)
	waitDone(t, ts, st.ID)
	text1 := getResult(t, ts, st.ID)
	ts.Close()
	drain(t, s)

	cells := filepath.Join(dir, "cells.jsonl")
	line := findLine(t, cells, `"key":"job/`)
	if err := faults.FlipPayloadByte(cells, line); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(t, Config{Dir: dir})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	defer drain(t, s2)
	if s2.Recovered() != 1 {
		t.Fatalf("Recovered() = %d, want 1 (corrupt result must recompute)", s2.Recovered())
	}
	if done := waitDone(t, ts2, st.ID); done.State != StateDone {
		t.Fatalf("recomputed job = %+v", done)
	}
	if text2 := getResult(t, ts2, st.ID); !bytes.Equal(text1, text2) {
		t.Errorf("recomputed result differs from the original:\n--- first\n%s\n--- second\n%s", text1, text2)
	}
	if got := s2.Stats(); got.Executed != 1 {
		t.Errorf("recompute executed %d jobs, want 1", got.Executed)
	}
}

// findLine returns the 1-based number of the first line in path
// containing substr.
func findLine(t *testing.T, path, substr string) int {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(string(b), "\n") {
		if strings.Contains(line, substr) {
			return i + 1
		}
	}
	t.Fatalf("%s has no line containing %q", path, substr)
	return 0
}

func TestServerStream(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	st, _ := submit(t, ts, quickSpec)
	resp, err := http.Get(ts.URL + "/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	var events []Status
	for {
		var ev Status
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream ended without a terminal event (after %d events): %v", len(events), err)
		}
		events = append(events, ev)
		if ev.State.Terminal() {
			break
		}
	}
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("terminal stream event = %+v", last)
	}
	// io.EOF follows the terminal event: the server closed the stream.
	var extra Status
	if err := dec.Decode(&extra); err != io.EOF {
		t.Fatalf("after terminal event: (%+v, %v), want EOF", extra, err)
	}
}

func TestServerHTTPValidation(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drain(t, s)

	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"bad spec", "POST", "/jobs", `{"bogus":1}`, http.StatusBadRequest},
		{"no workloads", "POST", "/jobs", `{"quick":true}`, http.StatusBadRequest},
		{"unknown job", "GET", "/jobs/jdeadbeef", "", http.StatusNotFound},
		{"unknown result", "GET", "/jobs/jdeadbeef/result", "", http.StatusNotFound},
		{"unknown stream", "GET", "/jobs/jdeadbeef/stream", "", http.StatusNotFound},
		{"oversize spec", "POST", "/jobs", `{"workloads":["` + strings.Repeat("x", maxSpecBytes) + `"]}`, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != c.want {
				t.Fatalf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.want)
			}
		})
	}
}

func TestRetryBackoffBounded(t *testing.T) {
	for attempt := 1; attempt < 20; attempt++ {
		d := retryBackoff(attempt)
		if d <= 0 || d > 10*time.Second {
			t.Fatalf("retryBackoff(%d) = %v, want a bounded positive delay", attempt, d)
		}
	}
}
