package jobs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// maxSpecBytes bounds a job request body. A legitimate spec — even one
// with inline machine and workload definitions — is a few KB; anything
// bigger is shed before it is read.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API:
//
//	POST /jobs             submit a job spec → 202 (admitted) or 200
//	                       (deduplicated against an existing job);
//	                       429/503 + Retry-After when load is shed
//	GET  /jobs             list all jobs in submission order
//	GET  /jobs/{id}        one job's status; ?wait=30s blocks until the
//	                       job is terminal or the wait expires
//	GET  /jobs/{id}/result a done job's rendered tables (text/plain)
//	GET  /jobs/{id}/stream NDJSON status stream until terminal
//	GET  /healthz          daemon liveness + counters
//	GET  /readyz           200 admitting, 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

// clientID identifies the submitter for per-client admission caps: the
// X-Client header when present (cooperating clients name themselves),
// else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	buf, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("job spec exceeds %d bytes", maxSpecBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}

	j, admitted, err := s.Submit(clientID(r), buf)
	if err != nil {
		var adm *AdmissionError
		switch {
		case errors.As(err, &adm):
			w.Header().Set("Retry-After", strconv.Itoa(int(adm.RetryAfter/time.Second)))
			code := http.StatusTooManyRequests
			if adm.Draining {
				code = http.StatusServiceUnavailable
			}
			writeError(w, code, adm.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	code := http.StatusOK
	if admitted {
		code = http.StatusAccepted
	}
	writeJSON(w, code, j.status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if waitStr := r.URL.Query().Get("wait"); waitStr != "" {
		d, err := time.ParseDuration(waitStr)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad wait duration %q: %v", waitStr, err))
			return
		}
		select {
		case <-j.doneCh():
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	st := j.status()
	switch st.State {
	case StateDone:
		text, err := s.Result(st.ID)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(text)
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: "+st.Error)
	default:
		// Not done yet: tell the client when to come back rather than
		// holding the connection.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusAccepted, fmt.Sprintf("job is %s (%d/%d cells)", st.State, st.CellsDone, st.CellsTotal))
	}
}

// handleStream serves an NDJSON event stream: the job's current status
// immediately, then every transition until the job is terminal or the
// client goes away. Slow readers drop intermediate progress events (the
// subscriber channel is lossy by design); terminal states always
// arrive because finish() publishes them before closing done.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)

	ch, st, unsubscribe := j.subscribe()
	defer unsubscribe()
	enc := json.NewEncoder(w)
	emit := func(st Status) bool {
		if err := enc.Encode(st); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !st.State.Terminal()
	}
	if !emit(st) {
		return
	}
	done := j.doneCh()
	for {
		select {
		case st := <-ch:
			if !emit(st) {
				return
			}
		case <-done:
			// Drain any buffered events, then emit the terminal state.
			for {
				select {
				case st := <-ch:
					if !emit(st) {
						return
					}
				default:
					emit(j.status())
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}
