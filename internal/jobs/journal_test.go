package jobs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"atomicsmodel/internal/faults"
	"atomicsmodel/internal/runlog"
)

// openForTest opens dir's journal and fails the test on error.
func openForTest(t *testing.T, dir string) (*Journal, []*RecoveredJob, []runlog.Quarantine) {
	t.Helper()
	j, jobs, q, err := OpenJournal(dir)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, jobs, q
}

func specRaw(t *testing.T, body string) json.RawMessage {
	t.Helper()
	s, err := ParseSpec([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	raw := specRaw(t, `{"workloads":["high-faa"],"quick":true}`)
	if err := j.Submit("jAAA", raw); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("jBBB", raw); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit("jCCC", raw); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("jAAA", "cafecafecafecafe"); err != nil {
		t.Fatal(err)
	}
	if err := j.Failed("jBBB", "deadline exceeded"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, jobs, quarantined := openForTest(t, dir)
	defer j2.Close()
	if len(quarantined) != 0 {
		t.Fatalf("clean journal quarantined %d lines: %+v", len(quarantined), quarantined)
	}
	if len(jobs) != 3 {
		t.Fatalf("recovered %d jobs, want 3", len(jobs))
	}
	want := map[string]State{"jAAA": StateDone, "jBBB": StateFailed, "jCCC": StateQueued}
	for _, job := range jobs {
		if job.State != want[job.ID] {
			t.Errorf("job %s state = %s, want %s", job.ID, job.State, want[job.ID])
		}
	}
	if jobs[0].ID != "jAAA" || jobs[2].ID != "jCCC" {
		t.Errorf("recovery order %s,%s,%s; want first-submission order", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
	if jobs[0].ResultDigest != "cafecafecafecafe" {
		t.Errorf("done job result digest = %q", jobs[0].ResultDigest)
	}
	if jobs[1].Error != "deadline exceeded" {
		t.Errorf("failed job error = %q", jobs[1].Error)
	}
}

func TestJournalResubmitAfterTerminal(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	raw := specRaw(t, `{"workloads":["high-faa"]}`)
	j.Submit("jX", raw)
	j.Failed("jX", "boom")
	j.Submit("jX", raw) // resubmission: the job is pending again
	j.Close()

	_, jobs, _ := openForTest(t, dir)
	if len(jobs) != 1 || jobs[0].State != StateQueued || jobs[0].Error != "" {
		t.Fatalf("resubmitted job = %+v, want one pending job with no error", jobs[0])
	}
}

func TestJournalTornFinalWrite(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	raw := specRaw(t, `{"workloads":["high-faa"]}`)
	j.Submit("jOK", raw)
	j.Submit("jTORN", raw)
	j.Close()
	if err := faults.TearFinalLine(filepath.Join(dir, journalFile)); err != nil {
		t.Fatal(err)
	}

	j2, jobs, quarantined := openForTest(t, dir)
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != "jOK" {
		t.Fatalf("recovered %d jobs, want just jOK (torn line dropped)", len(jobs))
	}
	if len(quarantined) != 1 || !strings.Contains(quarantined[0].Reason, "torn") {
		t.Fatalf("quarantine = %+v, want one torn-final-write entry", quarantined)
	}
}

func TestJournalCorruptLineQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	raw := specRaw(t, `{"workloads":["high-faa"]}`)
	j.Submit("jBAD", raw)
	j.Submit("jGOOD", raw)
	j.Close()
	// A flipped bit mid-payload either breaks the JSON or breaks the
	// spec digest; both must quarantine line 1 and keep line 2.
	if err := faults.FlipPayloadByte(filepath.Join(dir, journalFile), 1); err != nil {
		t.Fatal(err)
	}

	j2, jobs, quarantined := openForTest(t, dir)
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != "jGOOD" {
		t.Fatalf("recovered %v, want just jGOOD", jobIDs(jobs))
	}
	if len(quarantined) != 1 {
		t.Fatalf("quarantined %d lines, want 1: %+v", len(quarantined), quarantined)
	}
}

func TestJournalDigestMismatchQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	j.Submit("jX", specRaw(t, `{"workloads":["high-faa"]}`))
	j.Close()
	// Rot the stored digest: the record parses fine but carries data
	// the daemon must not trust.
	if err := faults.CorruptDigest(filepath.Join(dir, journalFile), 1); err != nil {
		t.Fatal(err)
	}

	j2, jobs, quarantined := openForTest(t, dir)
	defer j2.Close()
	if len(jobs) != 0 {
		t.Fatalf("recovered %v from a digest-mismatched record", jobIDs(jobs))
	}
	if len(quarantined) != 1 || !strings.Contains(quarantined[0].Reason, "digest mismatch") {
		t.Fatalf("quarantine = %+v, want a digest-mismatch entry", quarantined)
	}
}

func TestJournalOrphanTerminalQuarantined(t *testing.T) {
	dir := t.TempDir()
	j, _, _ := openForTest(t, dir)
	j.Submit("jX", specRaw(t, `{"workloads":["high-faa"]}`))
	j.Close()
	if err := faults.InjectOrphanTerminal(filepath.Join(dir, journalFile), "jGHOST"); err != nil {
		t.Fatal(err)
	}

	j2, jobs, quarantined := openForTest(t, dir)
	defer j2.Close()
	if len(jobs) != 1 || jobs[0].ID != "jX" {
		t.Fatalf("recovered %v, want just jX (no job invented from the orphan)", jobIDs(jobs))
	}
	if len(quarantined) != 1 || !strings.Contains(quarantined[0].Reason, "no submit record") {
		t.Fatalf("quarantine = %+v, want a terminal-without-submit entry", quarantined)
	}
}

func TestValidateJournal(t *testing.T) {
	dir := t.TempDir()
	if _, err := ValidateJournal(dir); err == nil {
		t.Fatal("ValidateJournal on an empty dir = nil error, want missing-file error")
	}
	j, _, _ := openForTest(t, dir)
	raw := specRaw(t, `{"workloads":["high-faa"]}`)
	j.Submit("jA", raw)
	j.Done("jA", "cafecafecafecafe")
	j.Submit("jB", raw)
	j.Failed("jB", "boom")
	j.Submit("jC", raw)
	j.Close()

	summary, err := ValidateJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := "journal ok: 3 jobs (1 done, 1 failed, 1 pending)"
	if summary != want {
		t.Fatalf("summary = %q, want %q", summary, want)
	}

	if err := os.WriteFile(filepath.Join(dir, journalFile), append(readFile(t, filepath.Join(dir, journalFile)), []byte("{garbage\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	summary, err = ValidateJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "quarantined") {
		t.Fatalf("summary = %q, want a quarantined count", summary)
	}
}

func jobIDs(jobs []*RecoveredJob) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
