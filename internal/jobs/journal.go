package jobs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"atomicsmodel/internal/runlog"
)

// The job journal is the daemon's write-ahead log: <dir>/jobs.jsonl.
// Every admitted job appends a submit record — spec payload plus a
// content digest over it — BEFORE it becomes visible to workers, and a
// terminal record (done with the result digest, or failed with the
// error) when it finishes. Replaying the journal therefore
// reconstructs the daemon's whole job table after any crash: a job
// with a submit record and no terminal record was queued or in flight
// when the process died, and is simply re-run (its completed cells
// replay from the shared cell cache, so recovery converges instead of
// starting over).
//
// Like the runlog files it imitates, the journal is append-only and
// corruption-tolerant: a torn final line is the normal residue of a
// kill and is dropped silently-but-reported, an unparseable interior
// line or a submit record whose digest no longer matches its payload
// is quarantined (runlog.Quarantine) rather than trusted, and a
// terminal record for an unknown job is quarantined too.

// journalFile is the job journal's name inside the run directory.
const journalFile = "jobs.jsonl"

// Journal record types.
const (
	recSubmit = "job"    // job admitted: ID + canonical spec + spec digest
	recDone   = "done"   // job completed: ID + result digest
	recFailed = "failed" // job failed terminally: ID + error
)

// journalRecord is one line of jobs.jsonl, discriminated by Type.
type journalRecord struct {
	Type string `json:"type"`
	ID   string `json:"id"`
	// Spec is the job's canonical spec JSON (submit records only).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Digest is runlog.Digest over Spec on submit records, and the
	// job's result digest on done records.
	Digest string `json:"digest,omitempty"`
	// Error is the terminal error (failed records only).
	Error string `json:"error,omitempty"`
}

// RecoveredJob is one job reconstructed from the journal at open time.
type RecoveredJob struct {
	ID   string
	Spec *Spec
	// Raw is the canonical spec JSON as journaled.
	Raw json.RawMessage
	// Terminal state recovered for the job: StateQueued (no terminal
	// record — the job must re-run), StateDone (ResultDigest holds the
	// result's content hash), or StateFailed (Error holds the message).
	State        State
	ResultDigest string
	Error        string
}

// Journal appends job records to <dir>/jobs.jsonl. Methods are safe
// for concurrent use; every record is flushed before the append
// returns, so an admitted job is durable before its client hears 202.
type Journal struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// OpenJournal replays any existing job journal in dir and opens it for
// appending. It returns the recovered jobs in first-submission order
// and the quarantined (corrupt) lines; neither is an error.
func OpenJournal(dir string) (*Journal, []*RecoveredJob, []runlog.Quarantine, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, nil, err
	}
	path := filepath.Join(dir, journalFile)
	jobs, quarantined, err := replayJournal(path)
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, err
	}
	return &Journal{f: f, w: bufio.NewWriter(f)}, jobs, quarantined, nil
}

// replayJournal folds the journal's records into per-job final states.
func replayJournal(path string) ([]*RecoveredJob, []runlog.Quarantine, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	byID := map[string]*RecoveredJob{}
	var order []*RecoveredJob
	var quarantined []runlog.Quarantine
	lines := splitLines(b)
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			reason := fmt.Sprintf("unparseable record: %v", err)
			if i == len(lines)-1 {
				reason = "torn final write (killed daemon)"
			}
			quarantined = append(quarantined, runlog.Quarantine{Line: i + 1, Reason: reason})
			continue
		}
		switch rec.Type {
		case recSubmit:
			if got := runlog.Digest(rec.Spec); got != rec.Digest {
				quarantined = append(quarantined, runlog.Quarantine{
					Line: i + 1, Key: rec.ID,
					Reason: fmt.Sprintf("spec digest mismatch: stored %s, payload hashes to %s", rec.Digest, got),
				})
				continue
			}
			spec, err := ParseSpec(rec.Spec)
			if err != nil {
				// Well-formed line, digest intact, but the spec no
				// longer parses (schema drift between versions):
				// quarantine rather than crash the daemon.
				quarantined = append(quarantined, runlog.Quarantine{
					Line: i + 1, Key: rec.ID,
					Reason: fmt.Sprintf("journaled spec no longer parses: %v", err),
				})
				continue
			}
			if j, ok := byID[rec.ID]; ok {
				// Resubmission after a terminal state: the job is
				// pending again.
				j.State, j.ResultDigest, j.Error = StateQueued, "", ""
				continue
			}
			j := &RecoveredJob{ID: rec.ID, Spec: spec, Raw: rec.Spec, State: StateQueued}
			byID[rec.ID] = j
			order = append(order, j)
		case recDone, recFailed:
			j, ok := byID[rec.ID]
			if !ok {
				quarantined = append(quarantined, runlog.Quarantine{
					Line: i + 1, Key: rec.ID,
					Reason: "terminal record for a job with no submit record",
				})
				continue
			}
			if rec.Type == recDone {
				j.State, j.ResultDigest, j.Error = StateDone, rec.Digest, ""
			} else {
				j.State, j.ResultDigest, j.Error = StateFailed, "", rec.Error
			}
		default:
			quarantined = append(quarantined, runlog.Quarantine{
				Line: i + 1, Reason: fmt.Sprintf("unknown record type %q", rec.Type),
			})
		}
	}
	return order, quarantined, nil
}

func (j *Journal) emit(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	// Flush per record: the write-ahead property is the whole point.
	return j.w.Flush()
}

// Submit journals an admitted job before it is enqueued.
func (j *Journal) Submit(id string, spec json.RawMessage) error {
	return j.emit(journalRecord{Type: recSubmit, ID: id, Spec: spec, Digest: runlog.Digest(spec)})
}

// Done journals a completed job and its result digest.
func (j *Journal) Done(id, resultDigest string) error {
	return j.emit(journalRecord{Type: recDone, ID: id, Digest: resultDigest})
}

// Failed journals a terminally failed job.
func (j *Journal) Failed(id, msg string) error {
	return j.emit(journalRecord{Type: recFailed, ID: id, Error: msg})
}

// Close flushes and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// splitLines mirrors runlog's splitter: newline-separated, final
// unterminated fragment kept (it is the torn-write case).
func splitLines(b []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, c := range b {
		if c == '\n' {
			out = append(out, b[start:i])
			start = i + 1
		}
	}
	if start < len(b) {
		out = append(out, b[start:])
	}
	return out
}

// ValidateJournal replays a run directory's job journal and returns a
// one-line summary (the check behind `atomicd -checkjournal`). Pending
// jobs are jobs a restarted daemon would re-run; a drained daemon
// leaves zero of them.
func ValidateJournal(dir string) (string, error) {
	path := filepath.Join(dir, journalFile)
	if _, err := os.Stat(path); err != nil {
		return "", fmt.Errorf("jobs: %w", err)
	}
	jobs, quarantined, err := replayJournal(path)
	if err != nil {
		return "", err
	}
	var done, failed, pending int
	for _, j := range jobs {
		switch j.State {
		case StateDone:
			done++
		case StateFailed:
			failed++
		default:
			pending++
		}
	}
	s := fmt.Sprintf("journal ok: %d jobs (%d done, %d failed, %d pending)",
		len(jobs), done, failed, pending)
	if len(quarantined) > 0 {
		s += fmt.Sprintf("; %d line(s) quarantined", len(quarantined))
	}
	return s, nil
}
