// Package plot renders experiment series as ASCII line charts, so the
// harness's figures are figures and not only tables. Charts support
// multiple series, linear or logarithmic axes, and automatic legends —
// enough to eyeball every curve shape the paper reports from a
// terminal. In the model pipeline (ARCHITECTURE.md) it is a pure
// renderer: the harness converts figure-shaped tables into charts
// (harness.ChartFromTable) behind atomicsim's -plot flag.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a renderable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot-area dimensions in characters
	// (defaults 64x20 when zero).
	Width, Height int
	// LogY plots the Y axis in log10 (non-positive values clamp to the
	// smallest positive Y).
	LogY bool
	// LogX plots the X axis in log10.
	LogX   bool
	series []Series
}

// NewChart creates an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// Add appends a series. Points with mismatched X/Y lengths are
// truncated to the shorter side.
func (c *Chart) Add(name string, x, y []float64) {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	c.series = append(c.series, Series{Name: name, X: x[:n], Y: y[:n]})
}

// markers assigns one rune per series, cycling if needed.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the chart.
func (c *Chart) Render(w io.Writer) error {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	// Collect bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	minPosY, minPosX := math.Inf(1), math.Inf(1)
	points := 0
	for _, s := range c.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			points++
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
			if y > 0 {
				minPosY = math.Min(minPosY, y)
			}
			if x > 0 {
				minPosX = math.Min(minPosX, x)
			}
		}
	}
	if points == 0 {
		_, err := fmt.Fprintf(w, "%s\n  (no data)\n", c.Title)
		return err
	}

	tx := func(x float64) float64 { return x }
	ty := func(y float64) float64 { return y }
	if c.LogX {
		if !(minPosX < math.Inf(1)) {
			return fmt.Errorf("plot: LogX with no positive X values")
		}
		tx = func(x float64) float64 {
			if x <= 0 {
				x = minPosX
			}
			return math.Log10(x)
		}
		minX, maxX = tx(minX), tx(maxX)
		if minX > maxX {
			minX = maxX
		}
	}
	if c.LogY {
		if !(minPosY < math.Inf(1)) {
			return fmt.Errorf("plot: LogY with no positive Y values")
		}
		ty = func(y float64) float64 {
			if y <= 0 {
				y = minPosY
			}
			return math.Log10(y)
		}
		minY, maxY = ty(minY), ty(maxY)
		if minY > maxY {
			minY = maxY
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (tx(x) - minX) / (maxX - minX)
		i := int(math.Round(f * float64(width-1)))
		if i < 0 {
			i = 0
		}
		if i >= width {
			i = width - 1
		}
		return i
	}
	row := func(y float64) int {
		f := (ty(y) - minY) / (maxY - minY)
		i := int(math.Round(f * float64(height-1)))
		if i < 0 {
			i = 0
		}
		if i >= height {
			i = height - 1
		}
		return height - 1 - i
	}
	for si, s := range c.series {
		mk := markers[si%len(markers)]
		// Connect consecutive points with interpolated marks, then
		// stamp the data points on top.
		for i := 1; i < len(s.X); i++ {
			c0, r0 := col(s.X[i-1]), row(s.Y[i-1])
			c1, r1 := col(s.X[i]), row(s.Y[i])
			steps := abs(c1-c0) + abs(r1-r0)
			for st := 0; st <= steps; st++ {
				f := 0.0
				if steps > 0 {
					f = float64(st) / float64(steps)
				}
				cc := c0 + int(math.Round(f*float64(c1-c0)))
				rr := r0 + int(math.Round(f*float64(r1-r0)))
				if grid[rr][cc] == ' ' {
					grid[rr][cc] = '.'
				}
			}
		}
		for i := range s.X {
			grid[row(s.Y[i])][col(s.X[i])] = mk
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	yTop, yBot := c.axisLabel(maxY, c.LogY), c.axisLabel(minY, c.LogY)
	labelWidth := len(yTop)
	for _, s := range []string{yBot, c.YLabel} {
		if len(s) > labelWidth {
			labelWidth = len(s)
		}
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelWidth)
		switch r {
		case 0:
			label = pad(yTop, labelWidth)
		case height - 1:
			label = pad(yBot, labelWidth)
		case height / 2:
			label = pad(c.YLabel, labelWidth)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", labelWidth), strings.Repeat("-", width))
	xl := c.axisLabel(minX, c.LogX)
	xr := c.axisLabel(maxX, c.LogX)
	gap := width - len(xl) - len(xr) - len(c.XLabel)
	if gap < 2 {
		gap = 2
	}
	fmt.Fprintf(&b, "%s %s%s%s%s%s\n", strings.Repeat(" ", labelWidth), xl,
		strings.Repeat(" ", gap/2), c.XLabel, strings.Repeat(" ", gap-gap/2), xr)
	for si, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// axisLabel formats an axis endpoint, undoing the log transform so the
// label shows the data value.
func (c *Chart) axisLabel(v float64, isLog bool) string {
	if isLog {
		v = math.Pow(10, v)
	}
	switch {
	case v != 0 && (math.Abs(v) >= 1e6 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.2g", v)
	case v == math.Trunc(v):
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s[:w]
	}
	return strings.Repeat(" ", w-len(s)) + s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
