package plot

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestBasicChart(t *testing.T) {
	c := NewChart("throughput", "threads", "Mops")
	c.Add("FAA", []float64{1, 2, 4, 8}, []float64{100, 50, 45, 40})
	c.Add("CAS", []float64{1, 2, 4, 8}, []float64{100, 25, 12, 5})
	out := render(t, c)
	for _, want := range []string{"throughput", "threads", "Mops", "FAA", "CAS", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in chart:\n%s", want, out)
		}
	}
	// Axis endpoints rendered as data values.
	if !strings.Contains(out, "100") || !strings.Contains(out, "8") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestEmptyChart(t *testing.T) {
	c := NewChart("empty", "x", "y")
	out := render(t, c)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %s", out)
	}
}

func TestLogAxes(t *testing.T) {
	c := NewChart("log", "n", "v")
	c.LogY = true
	c.LogX = true
	c.Add("s", []float64{1, 10, 100, 1000}, []float64{1, 0.1, 0.01, 0.001})
	out := render(t, c)
	// Log-log straight line: marker should appear on both diagonal ends.
	if !strings.Contains(out, "*") {
		t.Errorf("no markers:\n%s", out)
	}
	// Labels show the original values, not the logs.
	if !strings.Contains(out, "1000") {
		t.Errorf("x label not de-logged:\n%s", out)
	}
}

func TestLogYRejectsAllNonPositive(t *testing.T) {
	c := NewChart("bad", "x", "y")
	c.LogY = true
	c.Add("s", []float64{1, 2}, []float64{0, -1})
	var sb strings.Builder
	if err := c.Render(&sb); err == nil {
		t.Fatal("LogY with no positive values should error")
	}
}

func TestNaNAndInfSkipped(t *testing.T) {
	c := NewChart("nan", "x", "y")
	c.Add("s", []float64{1, 2, 3}, []float64{1, math.NaN(), math.Inf(1)})
	out := render(t, c)
	if strings.Contains(out, "(no data)") {
		t.Error("valid point dropped")
	}
}

func TestMismatchedLengthsTruncated(t *testing.T) {
	c := NewChart("t", "x", "y")
	c.Add("s", []float64{1, 2, 3}, []float64{5})
	out := render(t, c)
	if strings.Contains(out, "(no data)") {
		t.Error("single point should plot")
	}
}

func TestConstantSeries(t *testing.T) {
	c := NewChart("flat", "x", "y")
	c.Add("s", []float64{1, 2, 3}, []float64{7, 7, 7})
	out := render(t, c)
	if !strings.Contains(out, "*") {
		t.Errorf("flat series missing markers:\n%s", out)
	}
}

func TestCustomDimensions(t *testing.T) {
	c := NewChart("dims", "x", "y")
	c.Width, c.Height = 20, 5
	c.Add("s", []float64{0, 1}, []float64{0, 1})
	out := render(t, c)
	lines := strings.Split(out, "\n")
	plotLines := 0
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines++
		}
	}
	if plotLines != 5 {
		t.Errorf("plot rows = %d, want 5", plotLines)
	}
}

func TestManySeriesCycleMarkers(t *testing.T) {
	c := NewChart("many", "x", "y")
	for i := 0; i < 10; i++ {
		c.Add("s", []float64{1, 2}, []float64{float64(i), float64(i + 1)})
	}
	out := render(t, c)
	if !strings.Contains(out, "@") { // 6th marker
		t.Errorf("marker cycling broken:\n%s", out)
	}
}

func TestLinesConnectPoints(t *testing.T) {
	c := NewChart("line", "x", "y")
	c.Width, c.Height = 21, 11
	c.Add("s", []float64{0, 10}, []float64{0, 10})
	out := render(t, c)
	if !strings.Contains(out, ".") {
		t.Errorf("no interpolation dots between distant points:\n%s", out)
	}
}
