package atomicsmodel_test

import (
	"testing"

	"atomicsmodel"
)

// Facade surface tests: every re-exported entry point is reachable and
// consistent with the internal packages it fronts.

func TestFacadeMachines(t *testing.T) {
	ms := atomicsmodel.Machines()
	if len(ms) != 2 {
		t.Fatalf("Machines() = %d entries", len(ms))
	}
	if atomicsmodel.XeonE5().Name != "XeonE5" || atomicsmodel.KNL().Name != "KNL" {
		t.Fatal("machine constructors")
	}
	m, err := atomicsmodel.MachineByName("knl")
	if err != nil || m.Name != "KNL" {
		t.Fatalf("MachineByName: %v %v", m, err)
	}
	if _, err := atomicsmodel.MachineByName("bogus"); err == nil {
		t.Fatal("bogus machine accepted")
	}
}

func TestFacadePrimitives(t *testing.T) {
	for _, p := range []atomicsmodel.Primitive{
		atomicsmodel.CAS, atomicsmodel.FAA, atomicsmodel.SWAP,
		atomicsmodel.TAS, atomicsmodel.CAS2, atomicsmodel.Load, atomicsmodel.Store,
	} {
		q, err := atomicsmodel.ParsePrimitive(p.String())
		if err != nil || q != p {
			t.Errorf("round trip %v failed", p)
		}
	}
}

func TestFacadePlaceCompact(t *testing.T) {
	m := atomicsmodel.XeonE5()
	cores, err := atomicsmodel.PlaceCompact(m, 4)
	if err != nil || len(cores) != 4 {
		t.Fatalf("PlaceCompact: %v %v", cores, err)
	}
	if _, err := atomicsmodel.PlaceCompact(m, 1000); err == nil {
		t.Fatal("oversubscription accepted")
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(atomicsmodel.Experiments()) < 14 {
		t.Fatal("experiment registry too small")
	}
	e, err := atomicsmodel.ExperimentByID("T1")
	if err != nil {
		t.Fatal(err)
	}
	tables, err := e.Run(atomicsmodel.ExperimentOptions{Quick: true})
	if err != nil || len(tables) == 0 {
		t.Fatalf("T1 via facade: %v %v", tables, err)
	}
}

func TestFacadeWorkloadSpecs(t *testing.T) {
	names := atomicsmodel.WorkloadSpecNames()
	if len(names) == 0 {
		t.Fatal("no registered workload specs")
	}
	if _, err := atomicsmodel.WorkloadSpecByName("HIGH-FAA"); err != nil {
		t.Fatalf("case-insensitive lookup: %v", err)
	}
	if _, err := atomicsmodel.WorkloadSpecByName("bogus"); err == nil {
		t.Fatal("bogus workload spec accepted")
	}
	sp, err := atomicsmodel.ParseWorkloadSpec([]byte(
		`{"primitive":"FAA","threads":2,"warmupPS":1000000,"durationPS":5000000}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := atomicsmodel.RunWorkloadSpec(sp, atomicsmodel.XeonE5())
	if err != nil || res.Ops == 0 {
		t.Fatalf("RunWorkloadSpec: %+v %v", res, err)
	}
	e := atomicsmodel.WorkloadExperiment([]*atomicsmodel.WorkloadSpec{sp})
	tables, err := e.Run(atomicsmodel.ExperimentOptions{
		Quick: true, Machines: []*atomicsmodel.Machine{atomicsmodel.XeonE5()},
	})
	if err != nil || len(tables) == 0 {
		t.Fatalf("WorkloadExperiment via facade: %v %v", tables, err)
	}
}

func TestFacadeAppSpecs(t *testing.T) {
	names := atomicsmodel.AppSpecNames()
	if len(names) == 0 {
		t.Fatal("no registered app specs")
	}
	if _, err := atomicsmodel.AppSpecByName("TREIBER"); err != nil {
		t.Fatalf("case-insensitive lookup: %v", err)
	}
	if _, err := atomicsmodel.AppSpecByName("bogus"); err == nil {
		t.Fatal("bogus app spec accepted")
	}
	if len(atomicsmodel.AppStructureNames()) == 0 {
		t.Fatal("no registered structures")
	}
	sp, err := atomicsmodel.ParseAppSpec([]byte(
		`{"structure":"counter-faa","threads":2,"warmupPS":1000000,"durationPS":5000000}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := atomicsmodel.RunAppSpec(sp, atomicsmodel.XeonE5())
	if err != nil || res.Ops == 0 {
		t.Fatalf("RunAppSpec: %+v %v", res, err)
	}
	mops, err := atomicsmodel.PredictAppThroughput(
		atomicsmodel.XeonE5(), sp, atomicsmodel.MeasuredQuantities(res))
	if err != nil || mops <= 0 {
		t.Fatalf("PredictAppThroughput: %v %v", mops, err)
	}
	if q := atomicsmodel.BlindQuantities(8); q.RetryFactor != 8 {
		t.Fatalf("BlindQuantities(8).RetryFactor = %v", q.RetryFactor)
	}
	e := atomicsmodel.AppExperiment([]*atomicsmodel.AppSpec{sp})
	tables, err := e.Run(atomicsmodel.ExperimentOptions{
		Quick: true, Machines: []*atomicsmodel.Machine{atomicsmodel.XeonE5()},
	})
	if err != nil || len(tables) == 0 {
		t.Fatalf("AppExperiment via facade: %v %v", tables, err)
	}
}

func TestFacadeNative(t *testing.T) {
	res, err := atomicsmodel.RunNative(atomicsmodel.NativeConfig{
		Threads: 2, Primitive: atomicsmodel.FAA, Duration: 10_000_000, // 10ms
	})
	if err != nil || res.Ops == 0 {
		t.Fatalf("RunNative: %+v %v", res, err)
	}
}

func TestFacadeModelAndCalibration(t *testing.T) {
	m := atomicsmodel.KNL()
	det := atomicsmodel.NewModel(m)
	if det.Machine() != m {
		t.Fatal("model machine")
	}
	simple, cal, err := atomicsmodel.CalibrateModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if cal.TLocal <= 0 || simple == nil {
		t.Fatal("calibration empty")
	}
}

func TestFacadeTimeConstants(t *testing.T) {
	if atomicsmodel.Microsecond != 1000*atomicsmodel.Nanosecond ||
		atomicsmodel.Second != 1000*atomicsmodel.Millisecond {
		t.Fatal("time constants inconsistent")
	}
}
