#!/bin/sh
# Repo checks: build, static analysis, the full test suite, a
# race-detector pass over the packages with real concurrency (the cell
# scheduler, the run log it writes through, and the hottest pooled data
# structures in the coherence layer), and a smoke run of the atomicsim
# CLI that exercises the manifest/resume path end to end. Run from the
# repo root.
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/harness ./internal/coherence ./internal/runlog"
go test -race ./internal/harness ./internal/coherence ./internal/runlog

echo "== atomicsim -manifest smoke run"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -manifest "$dir/run" > "$dir/fresh.txt"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -resume "$dir/run" > "$dir/resumed.txt" 2> "$dir/resume.log"
cmp "$dir/fresh.txt" "$dir/resumed.txt" || {
    echo "resumed tables differ from fresh run" >&2
    exit 1
}
go run ./cmd/atomicsim -checkmanifest "$dir/run"
# The manifest must contain cell records and a run summary, and the
# resumed run must have replayed at least one cell from the cache.
grep -q '"type":"cell"' "$dir/run/manifest.jsonl"
grep -q '"type":"run"' "$dir/run/manifest.jsonl"
grep -q '"cached":true' "$dir/run/manifest.jsonl"

echo "ok"
