#!/bin/sh
# Repo checks: build, static analysis, the docs gate (every package
# has a doc comment; no broken references in the top-level *.md files),
# the full test suite, a race-detector pass over the packages with real
# concurrency (the cell scheduler, the run log it writes through, and
# the hottest pooled data structures in the coherence layer), and smoke
# runs of the atomicsim CLI exercising the manifest/resume path and the
# observability layer (-metrics tables, -chrome traces) end to end.
# Run from the repo root.
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== docs check (package comments + markdown references)"
go run ./scripts/docscheck

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/harness ./internal/coherence ./internal/runlog"
go test -race ./internal/harness ./internal/coherence ./internal/runlog

echo "== atomicsim -manifest smoke run"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -manifest "$dir/run" > "$dir/fresh.txt"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -resume "$dir/run" > "$dir/resumed.txt" 2> "$dir/resume.log"
cmp "$dir/fresh.txt" "$dir/resumed.txt" || {
    echo "resumed tables differ from fresh run" >&2
    exit 1
}
go run ./cmd/atomicsim -checkmanifest "$dir/run"
# The manifest must contain cell records and a run summary, and the
# resumed run must have replayed at least one cell from the cache.
grep -q '"type":"cell"' "$dir/run/manifest.jsonl"
grep -q '"type":"run"' "$dir/run/manifest.jsonl"
grep -q '"cached":true' "$dir/run/manifest.jsonl"

echo "== observability smoke run (-metrics tables, -chrome trace)"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 -metrics \
    > "$dir/metrics.txt"
grep -q 'metrics (F3)' "$dir/metrics.txt"
# Metrics must not perturb results: the table prefix matches the plain run.
head -n "$(wc -l < "$dir/fresh.txt")" "$dir/metrics.txt" | cmp - "$dir/fresh.txt" || {
    echo "-metrics changed the result tables" >&2
    exit 1
}
go run ./cmd/atomictrace -threads 4 -ops 20 -chrome "$dir/trace.json" \
    > /dev/null 2>&1
grep -q '"traceEvents"' "$dir/trace.json"

echo "ok"
