#!/bin/sh
# Repo checks: build, static analysis, the docs gate (every package
# has a doc comment; no broken references in the top-level *.md files),
# the full test suite, a race-detector pass over the packages with real
# concurrency (the cell scheduler, the run log it writes through, and
# the hottest pooled data structures in the coherence layer), smoke
# runs of the atomicsim CLI exercising the manifest/resume path and the
# observability layer (-metrics tables, -chrome traces) end to end,
# a full invariant-checked sweep, a cache-corruption/quarantine smoke,
# a custom-machine-spec smoke (-machinefile load, digest-keyed resume,
# spec round trip), a workload-spec smoke (-workloadfile load,
# digest-keyed resume, -workloads name resolution), an app-spec smoke
# (-appfile load, digest-keyed "/app@" cells, resumed byte-identically,
# the conflict-model prediction column), a fleet-sweep smoke
# (-fleet cross-architecture run with bottleneck verdicts, resumed
# byte-identically from the digest-keyed cache), an atomicd job-server
# smoke (submit → poll → dedup → SIGTERM drain), a bench smoke
# enforcing the simulation path's allocation budget, and short
# native-fuzz passes over the run-log parsers, topology hop
# computation, the machine and workload spec loaders, and the sharded
# event-queue merge. Run from the repo root.
set -eu

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== docs check (package comments + markdown references)"
go run ./scripts/docscheck

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/harness ./internal/coherence ./internal/runlog ./internal/jobs"
go test -race ./internal/harness ./internal/coherence ./internal/runlog ./internal/jobs

echo "== atomicsim -manifest smoke run"
dir=$(mktemp -d)
trap 'rm -rf "$dir"' EXIT
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -manifest "$dir/run" > "$dir/fresh.txt"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -resume "$dir/run" > "$dir/resumed.txt" 2> "$dir/resume.log"
cmp "$dir/fresh.txt" "$dir/resumed.txt" || {
    echo "resumed tables differ from fresh run" >&2
    exit 1
}
go run ./cmd/atomicsim -checkmanifest "$dir/run"
# The manifest must contain cell records and a run summary, and the
# resumed run must have replayed at least one cell from the cache.
grep -q '"type":"cell"' "$dir/run/manifest.jsonl"
grep -q '"type":"run"' "$dir/run/manifest.jsonl"
grep -q '"cached":true' "$dir/run/manifest.jsonl"

echo "== observability smoke run (-metrics tables, -chrome trace)"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 -metrics \
    > "$dir/metrics.txt"
grep -q 'metrics (F3)' "$dir/metrics.txt"
# Metrics must not perturb results: the table prefix matches the plain run.
head -n "$(wc -l < "$dir/fresh.txt")" "$dir/metrics.txt" | cmp - "$dir/fresh.txt" || {
    echo "-metrics changed the result tables" >&2
    exit 1
}
go run ./cmd/atomictrace -threads 4 -ops 20 -chrome "$dir/trace.json" \
    > /dev/null 2>&1
grep -q '"traceEvents"' "$dir/trace.json"

echo "== invariant-checked sweep (-check must change nothing and find nothing)"
go run ./cmd/atomicsim -quick -quiet > "$dir/plain.txt"
go run ./cmd/atomicsim -quick -quiet -check > "$dir/checked.txt" 2> "$dir/check.log"
cmp "$dir/plain.txt" "$dir/checked.txt" || {
    echo "-check changed the result tables" >&2
    exit 1
}
if grep -q 'invariant:' "$dir/check.log"; then
    echo "invariant violations in a clean sweep:" >&2
    cat "$dir/check.log" >&2
    exit 1
fi

echo "== fault-injection smoke (corrupt cache quarantined, tables still byte-identical)"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -manifest "$dir/faultrun" > "$dir/fault_fresh.txt"
# Flip one byte inside a cached cell's value payload, the way bad disk
# would: the loader must quarantine the line (digest mismatch or
# unparseable entry) and recompute that cell.
awk 'NR==2 {
    pos = index($0, "\"value\"") + 12
    c = substr($0, pos, 1)
    print substr($0, 1, pos-1) (c == "x" ? "y" : "x") substr($0, pos+1)
    next
} {print}' "$dir/faultrun/cells.jsonl" > "$dir/faultrun/cells.tmp"
mv "$dir/faultrun/cells.tmp" "$dir/faultrun/cells.jsonl"
go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -resume "$dir/faultrun" > "$dir/fault_resumed.txt" 2> "$dir/fault.log"
grep -q 'quarantined' "$dir/fault.log" || {
    echo "corrupt cache line was not quarantined" >&2
    exit 1
}
cmp "$dir/fault_fresh.txt" "$dir/fault_resumed.txt" || {
    echo "recomputed tables differ after cache corruption" >&2
    exit 1
}
go run ./cmd/atomicsim -checkmanifest "$dir/faultrun" | grep -q 'manifest ok'
# Injected faults must fail loudly, not silently: a targeted mid-cell
# panic is recovered, reported, and reflected in the exit code.
if go run ./cmd/atomicsim -quick -quiet -exp F3 -machine XeonE5 \
    -faults panic=100@0 > /dev/null 2> "$dir/panic.log"; then
    echo "injected panic did not fail the run" >&2
    exit 1
fi
grep -q 'injected panic at event 100' "$dir/panic.log"

echo "== custom machine spec smoke (-machinefile, digest-keyed resume)"
# A machine loaded from a JSON spec file must run end to end, resume
# byte-identically from its own digest-keyed cache namespace, and its
# cell keys must carry the Name@digest form.
go run ./cmd/atomicsim -quick -quiet -exp F1 \
    -machinefile examples/machines/epyc.json \
    -manifest "$dir/specrun" > "$dir/spec_fresh.txt"
go run ./cmd/atomicsim -quick -quiet -exp F1 \
    -machinefile examples/machines/epyc.json \
    -resume "$dir/specrun" > "$dir/spec_resumed.txt"
cmp "$dir/spec_fresh.txt" "$dir/spec_resumed.txt" || {
    echo "-machinefile resume differs from fresh run" >&2
    exit 1
}
grep -q '"cached":true' "$dir/specrun/manifest.jsonl"
grep -q 'EPYC@' "$dir/specrun/manifest.jsonl" || {
    echo "spec-built machine cells are not digest-keyed" >&2
    exit 1
}
# Spec round trip: the same file through the facade parses, builds, and
# re-canonicalizes to a fixed point (covered in depth by TestSpecRoundTrip;
# this guards the shipped example file itself).
go run ./cmd/atomicmodel -machinefile examples/machines/epyc.json \
    -primitive FAA -threads 8 > /dev/null
# An unknown machine name must fail and list what is registered.
if go run ./cmd/atomicsim -quick -quiet -exp F1 -machines bogus \
    > /dev/null 2> "$dir/bogus.log"; then
    echo "unknown -machines name did not fail" >&2
    exit 1
fi
grep -q 'registered:' "$dir/bogus.log"

echo "== workload spec smoke (-workloadfile, digest-keyed resume)"
# A workload loaded from a JSON spec file must run end to end as the W
# suite, resume byte-identically from its own digest-keyed cache
# namespace, and its cell keys must carry the "/wl@digest" form.
go run ./cmd/atomicsim -quick -quiet \
    -workloadfile examples/workloads/swap-ladder.json \
    -manifest "$dir/wlrun" > "$dir/wl_fresh.txt"
go run ./cmd/atomicsim -quick -quiet \
    -workloadfile examples/workloads/swap-ladder.json \
    -resume "$dir/wlrun" > "$dir/wl_resumed.txt"
cmp "$dir/wl_fresh.txt" "$dir/wl_resumed.txt" || {
    echo "-workloadfile resume differs from fresh run" >&2
    exit 1
}
grep -q '"cached":true' "$dir/wlrun/manifest.jsonl"
grep -q '/wl@' "$dir/wlrun/manifest.jsonl" || {
    echo "workload spec cells are not digest-keyed" >&2
    exit 1
}
# Registered presets resolve by name; an unknown one fails and lists
# what is registered.
go run ./cmd/atomicsim -quick -quiet -workloads open-loop-faa \
    -machines Ideal8 > /dev/null
if go run ./cmd/atomicsim -quick -quiet -workloads bogus \
    > /dev/null 2> "$dir/wlbogus.log"; then
    echo "unknown -workloads name did not fail" >&2
    exit 1
fi
grep -q 'registered:' "$dir/wlbogus.log"

echo "== app spec smoke (-appfile, digest-keyed resume, prediction column)"
# An app loaded from a JSON spec file must run end to end as the A
# suite, resume byte-identically from its own digest-keyed cache
# namespace, key its cells "/app@digest", and carry the conflict
# model's prediction column.
go run ./cmd/atomicsim -quick -quiet -machines XeonE5 \
    -appfile examples/apps/elimination-sweep.json \
    -manifest "$dir/apprun" > "$dir/app_fresh.txt"
go run ./cmd/atomicsim -quick -quiet -machines XeonE5 \
    -appfile examples/apps/elimination-sweep.json \
    -resume "$dir/apprun" > "$dir/app_resumed.txt"
cmp "$dir/app_fresh.txt" "$dir/app_resumed.txt" || {
    echo "-appfile resume differs from fresh run" >&2
    exit 1
}
grep -q '"cached":true' "$dir/apprun/manifest.jsonl"
grep -q '/app@' "$dir/apprun/manifest.jsonl" || {
    echo "app spec cells are not digest-keyed" >&2
    exit 1
}
grep -q 'model Mops' "$dir/app_fresh.txt" || {
    echo "A-suite table is missing the conflict-model prediction column" >&2
    exit 1
}
# Registered presets resolve by name; an unknown one fails and lists
# what is registered.
go run ./cmd/atomicsim -quick -quiet -apps faa-counter \
    -machines Ideal8 > /dev/null
if go run ./cmd/atomicsim -quick -quiet -apps bogus \
    > /dev/null 2> "$dir/appbogus.log"; then
    echo "unknown -apps name did not fail" >&2
    exit 1
fi
grep -q 'registered:' "$dir/appbogus.log"

echo "== fleet sweep smoke (-fleet cross-architecture run, digest-keyed resume)"
# A fleet sweep must print per-machine bottleneck verdicts and a
# cross-architecture summary, and an interrupted sweep must resume
# byte-identically: every cell replays from the digest-keyed cache,
# metrics snapshots included, so the rollup is recomputable offline.
go run ./cmd/atomicsim -quick -quiet -fleet -machines XeonE5,Grace \
    -workloadfile examples/workloads/swap-ladder.json \
    -manifest "$dir/fleetrun" > "$dir/fleet_fresh.txt"
go run ./cmd/atomicsim -quick -quiet -fleet -machines XeonE5,Grace \
    -workloadfile examples/workloads/swap-ladder.json \
    -resume "$dir/fleetrun" > "$dir/fleet_resumed.txt"
cmp "$dir/fleet_fresh.txt" "$dir/fleet_resumed.txt" || {
    echo "-fleet resume differs from fresh run" >&2
    exit 1
}
grep -q '"cached":true' "$dir/fleetrun/manifest.jsonl"
grep -q '/wl@' "$dir/fleetrun/manifest.jsonl" || {
    echo "fleet cells are not digest-keyed" >&2
    exit 1
}
grep -q 'bottleneck' "$dir/fleet_fresh.txt" || {
    echo "fleet report is missing the bottleneck verdict column" >&2
    exit 1
}
grep -q 'FLEET summary' "$dir/fleet_fresh.txt" || {
    echo "fleet report is missing the cross-architecture summary" >&2
    exit 1
}

echo "== atomicd smoke (job server: submit, poll, dedup, drain)"
# The job daemon must serve a quick job end to end, deduplicate an
# identical resubmit against the cache (200, not 202, and no second
# execution), answer health checks, and drain clean on SIGTERM: exit 0,
# addr file removed, journal left with nothing pending.
go build -o "$dir/atomicd" ./cmd/atomicd
"$dir/atomicd" -dir "$dir/adrun" -quiet &
atomicd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$dir/adrun/atomicd.addr" ] && break
    sleep 0.1
done
addr=$(cat "$dir/adrun/atomicd.addr")
job='{"machines":["XeonE5"],"workloads":["high-faa"],"quick":true}'
code=$(curl -s -o "$dir/submit1.json" -w '%{http_code}' \
    -X POST "http://$addr/jobs" -d "$job")
[ "$code" = 202 ] || { echo "first submit returned $code, want 202" >&2; exit 1; }
jobid=$(sed -n 's/.*"id": *"\(j[a-f0-9]*\)".*/\1/p' "$dir/submit1.json" | head -n 1)
curl -s "http://$addr/jobs/$jobid?wait=60s" > "$dir/poll.json"
grep -q '"state": *"done"' "$dir/poll.json" || {
    echo "job did not reach done:" >&2; cat "$dir/poll.json" >&2; exit 1
}
curl -s "http://$addr/jobs/$jobid/result" | grep -q 'threads' || {
    echo "job result is not a rendered table" >&2; exit 1
}
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$addr/jobs" -d "$job")
[ "$code" = 200 ] || { echo "dup submit returned $code, want 200 (dedup)" >&2; exit 1; }
curl -s "http://$addr/healthz" | grep -q '"executed": *1' || {
    echo "dedup re-executed the job" >&2; exit 1
}
# App-spec jobs go through the same pipeline: submit one, wait, and the
# result must be an A-suite table with the prediction column.
appjob='{"machines":["XeonE5"],"apps":["treiber"],"quick":true}'
code=$(curl -s -o "$dir/submit_app.json" -w '%{http_code}' \
    -X POST "http://$addr/jobs" -d "$appjob")
[ "$code" = 202 ] || { echo "app job submit returned $code, want 202" >&2; exit 1; }
appjobid=$(sed -n 's/.*"id": *"\(j[a-f0-9]*\)".*/\1/p' "$dir/submit_app.json" | head -n 1)
curl -s "http://$addr/jobs/$appjobid?wait=60s" | grep -q '"state": *"done"' || {
    echo "app job did not reach done" >&2; exit 1
}
curl -s "http://$addr/jobs/$appjobid/result" | grep -q 'model Mops' || {
    echo "app job result is missing the prediction column" >&2; exit 1
}
# The health check surfaces the shared cell cache's traffic counters.
curl -s "http://$addr/healthz" | grep -q '"cacheHits"' || {
    echo "healthz is missing the cell-cache counters" >&2; exit 1
}
kill -TERM "$atomicd_pid"
wait "$atomicd_pid" || { echo "atomicd drain exited nonzero" >&2; exit 1; }
[ ! -e "$dir/adrun/atomicd.addr" ] || {
    echo "addr file survived the drain" >&2; exit 1
}
"$dir/atomicd" -checkjournal "$dir/adrun" | grep -q '0 pending' || {
    echo "drained journal still has pending jobs" >&2; exit 1
}

echo "== bench smoke (allocation budget on the simulation path)"
# The coherence access path must stay allocation-free, and a full cell
# must stay within a one-time pool-build budget (the steady state is
# zero allocations; at 100 iterations the build cost amortizes to a few
# objects per op). A regression to per-event allocation shows up as
# hundreds of allocs/op and fails here before it lands.
go test -run XXX -bench 'BenchmarkCoherenceAccess$' -benchtime 100x -benchmem \
    ./internal/coherence | tee "$dir/bench_coh.txt"
awk '/BenchmarkCoherenceAccess/ { if ($(NF-1) + 0 != 0) exit 1 }' "$dir/bench_coh.txt" || {
    echo "coherence access path allocates (allocs/op > 0)" >&2
    exit 1
}
go test -run XXX -bench 'BenchmarkFullCell$' -benchtime 100x -benchmem \
    ./internal/harness | tee "$dir/bench_cell.txt"
awk '/BenchmarkFullCell/ { if ($(NF-1) + 0 > 20) exit 1 }' "$dir/bench_cell.txt" || {
    echo "full-cell allocations regressed (allocs/op > 20 at 100 iterations)" >&2
    exit 1
}

echo "== fuzz smoke (runlog parsers, topology hops, machine/workload/app specs, shard merge)"
go test -run FuzzNothing -fuzz FuzzCacheLoad -fuzztime 5s ./internal/runlog > /dev/null
go test -run FuzzNothing -fuzz FuzzManifestValidate -fuzztime 5s ./internal/runlog > /dev/null
go test -run FuzzNothing -fuzz FuzzHops -fuzztime 5s ./internal/topology > /dev/null
go test -run FuzzNothing -fuzz FuzzSpecLoad -fuzztime 5s ./internal/machine > /dev/null
go test -run FuzzNothing -fuzz FuzzWorkloadSpecLoad -fuzztime 5s ./internal/workload > /dev/null
go test -run FuzzNothing -fuzz FuzzAppSpecLoad -fuzztime 5s ./internal/apps > /dev/null
go test -run FuzzNothing -fuzz FuzzShardMerge -fuzztime 5s ./internal/sim > /dev/null
go test -run FuzzNothing -fuzz FuzzJobSpecLoad -fuzztime 5s ./internal/jobs > /dev/null

echo "ok"
