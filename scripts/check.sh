#!/bin/sh
# Repo checks: static analysis plus a race-detector pass over the two
# packages with real concurrency (the cell scheduler) and the hottest
# pooled data structures (the coherence layer). Run from the repo root.
set -eu

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/harness ./internal/coherence"
go test -race ./internal/harness ./internal/coherence

echo "ok"
