// Command docscheck is the repository's documentation gate, run by
// scripts/check.sh (and CI). It enforces two invariants:
//
//  1. every Go package under the repo (root, internal/*, cmd/*,
//     scripts/*, examples/*) carries a package-level doc comment, so
//     godoc always explains a package's role in the model pipeline;
//  2. every relative link or file reference in the top-level *.md files
//     points at a path that exists, so the docs cannot silently rot as
//     files move.
//
// Usage: go run ./scripts/docscheck (from the repo root). Exits
// non-zero listing every violation.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	var problems []string
	problems = append(problems, checkPackageComments(".")...)
	problems = append(problems, checkMarkdownLinks(".")...)
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "docscheck:", p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPackageComments parses every Go package directory and reports
// those whose package clause has no doc comment on any file.
func checkPackageComments(root string) []string {
	// Collect directories containing non-test Go files.
	dirs := map[string]bool{}
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs[filepath.Dir(path)] = true
		}
		return nil
	})

	var problems []string
	for dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package-level doc comment", dir, name))
			}
		}
	}
	return problems
}

// mdLink matches inline Markdown links [text](target); bare uppercase
// doc references like "ARCHITECTURE.md" are matched separately.
var (
	mdLink  = regexp.MustCompile(`\]\(([^)\s]+)\)`)
	mdocRef = regexp.MustCompile(`\b([A-Z][A-Z_]+\.md)\b`)
	fence   = regexp.MustCompile("^\\s*(```|~~~)")
)

// checkMarkdownLinks scans the top-level *.md files for relative link
// targets and doc-file references and reports any that do not exist.
// External links (scheme-prefixed), pure anchors, and anything inside
// fenced code blocks are skipped.
func checkMarkdownLinks(root string) []string {
	files, err := filepath.Glob(filepath.Join(root, "*.md"))
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, file := range files {
		raw, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		inFence := false
		for lineNo, line := range strings.Split(string(raw), "\n") {
			if fence.MatchString(line) {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			targets := map[string]bool{}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				targets[m[1]] = true
			}
			for _, m := range mdocRef.FindAllStringSubmatch(line, -1) {
				targets[m[1]] = true
			}
			for target := range targets {
				if skipTarget(target) {
					continue
				}
				// Strip an in-file anchor: FILE.md#section → FILE.md.
				path := target
				if i := strings.IndexByte(path, '#'); i >= 0 {
					path = path[:i]
				}
				if path == "" {
					continue
				}
				if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(path))); err != nil {
					problems = append(problems,
						fmt.Sprintf("%s:%d: broken reference %q", file, lineNo+1, target))
				}
			}
		}
	}
	return problems
}

// skipTarget reports whether a link target is out of scope for the
// existence check: external URLs, mail links, and pure anchors.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
